//! Synthetic concept hierarchies over the non-target items.
//!
//! The paper's synthetic figures run on flat data, but the framework (and
//! our ablation benches) search rule bodies at concept level; this module
//! builds balanced hierarchies: items are grouped into first-level
//! concepts of `branching` children, those into second-level concepts,
//! and so on for `levels` levels. Target items stay directly below the
//! implicit root `ANY`, as Definition 2 requires.

use pm_txn::{Hierarchy, ItemId};
use serde::{Deserialize, Serialize};

/// Shape of a generated hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Children per concept.
    pub branching: usize,
    /// Number of concept levels above the items (0 = flat).
    pub levels: usize,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self {
            branching: 5,
            levels: 2,
        }
    }
}

impl HierarchyConfig {
    /// Build a hierarchy for a catalog with `n_items` total items of which
    /// the first `n_non_target` are non-target (only those are grouped).
    pub fn build(&self, n_items: usize, n_non_target: usize) -> Hierarchy {
        assert!(n_non_target <= n_items);
        assert!(
            self.branching >= 2 || self.levels == 0,
            "branching must be ≥ 2"
        );
        let mut h = Hierarchy::flat(n_items);
        if self.levels == 0 || n_non_target == 0 {
            return h;
        }
        // Level 1: group items.
        let mut current: Vec<_> = Vec::new();
        for (g, chunk) in (0..n_non_target)
            .collect::<Vec<_>>()
            .chunks(self.branching)
            .enumerate()
        {
            let c = h.add_concept(format!("L1-{g}"));
            for &i in chunk {
                h.link_item(ItemId(i as u32), c).expect("in range");
            }
            current.push(c);
        }
        // Higher levels: group concepts.
        for level in 2..=self.levels {
            if current.len() <= 1 {
                break;
            }
            let mut next = Vec::new();
            for (g, chunk) in current.chunks(self.branching).enumerate() {
                let c = h.add_concept(format!("L{level}-{g}"));
                for &child in chunk {
                    h.link_concept(child, c).expect("in range");
                }
                next.push(c);
            }
            current = next;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_when_zero_levels() {
        let h = HierarchyConfig {
            branching: 5,
            levels: 0,
        }
        .build(10, 8);
        assert_eq!(h.n_concepts(), 0);
    }

    #[test]
    fn two_level_shape() {
        let h = HierarchyConfig {
            branching: 3,
            levels: 2,
        }
        .build(12, 9);
        // 9 items / 3 = 3 level-1 concepts, then 1 level-2 concept.
        assert_eq!(h.n_concepts(), 4);
        assert!(h.validate().is_ok());
        // Every non-target item has 2 ancestors; targets none.
        for i in 0..9 {
            assert_eq!(h.item_ancestors(ItemId(i)).len(), 2, "item {i}");
        }
        for i in 9..12 {
            assert!(h.item_ancestors(ItemId(i)).is_empty());
        }
    }

    #[test]
    fn deep_hierarchy_terminates() {
        let h = HierarchyConfig {
            branching: 2,
            levels: 10,
        }
        .build(8, 8);
        assert!(h.validate().is_ok());
        // 4 + 2 + 1 concepts.
        assert_eq!(h.n_concepts(), 7);
        assert_eq!(h.item_ancestors(ItemId(0)).len(), 3);
    }

    #[test]
    fn ragged_groups() {
        let h = HierarchyConfig {
            branching: 4,
            levels: 1,
        }
        .build(10, 10);
        // ceil(10/4) = 3 concepts.
        assert_eq!(h.n_concepts(), 3);
        assert!(h.validate().is_ok());
    }
}
