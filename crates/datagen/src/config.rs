//! One-stop dataset configuration: Quest transactions + pricing + target
//! sales + (optional) hierarchy, assembled into a validated
//! [`TransactionSet`].

use crate::hierarchy_gen::HierarchyConfig;
use crate::pricing::PricingConfig;
use crate::quest::QuestConfig;
use crate::targets::TargetSpec;
use pm_stats::Binomial;
use pm_txn::{Catalog, CodeId, Hierarchy, ItemDef, ItemId, Sale, Transaction, TransactionSet};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How sale prices are selected within a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PriceCoupling {
    /// Every transaction has a latent *price-sensitivity* type
    /// `θ ~ U[0,1]`, anchored at its dominant pattern's preferred price
    /// (`θ = (pref + U[0,1]) / m`, uniform overall); each non-target
    /// sale's price index is `Binomial(m−1, θ)` and the target price is
    /// the pattern preference (subject to `target_noise`, which falls
    /// back to `Binomial(m−1, θ)`). The *marginal* price distribution is
    /// exactly uniform — the paper's "randomly selecting one price" — but
    /// prices within a basket correlate with each other and with the
    /// target price, which is the behavior the paper's §1 motivation
    /// (recommending "right prices" to price-insensitive customers)
    /// presupposes and its `⟨item, price⟩`-level rules exploit.
    #[default]
    Sensitivity,
    /// Fully independent uniform price per sale (the paper's literal
    /// sentence; leaves no price signal in baskets — ablation mode).
    Uniform,
}

/// Complete description of a synthetic profit-mining dataset.
///
/// Item layout in the generated catalog: ids `0..n_items` are the Quest
/// non-target items (item `i` has cost `c/(i+1)` — the paper numbers items
/// from 1); ids `n_items..` are the target items of the [`TargetSpec`].
///
/// ## Basket → target coupling
///
/// The paper's recommenders reach ≈95% hit rates over 8–40 recommendable
/// pairs, which is impossible if the target sale is drawn independently
/// of the basket; the paper does not state its coupling mechanism. We
/// couple through the Quest pattern table: every potential maximal
/// itemset carries a *preferred* `(target item, price)` pair sampled from
/// the target distribution (so the marginals stay exactly Zipf/normal ×
/// uniform), and each transaction takes its dominant pattern's preference
/// with probability `1 − target_noise`, otherwise an independent draw.
/// `target_noise = 1.0` reproduces the fully independent regime. See
/// DESIGN.md §5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Transaction structure.
    pub quest: QuestConfig,
    /// Price/cost grid.
    pub pricing: PricingConfig,
    /// Target items and frequencies.
    pub targets: TargetSpec,
    /// Concept hierarchy over non-target items (`None` = flat, the
    /// paper's figure setup).
    pub hierarchy: Option<HierarchyConfig>,
    /// Probability that a transaction's target sale ignores its dominant
    /// pattern's preference and is drawn independently.
    pub target_noise: f64,
    /// Within-basket price correlation model.
    pub price_coupling: PriceCoupling,
}

impl DatasetConfig {
    /// The paper's **Dataset I**: `|T| = 100K`, `|I| = 1000`, two target
    /// items (\$2 / \$10 cost, Zipf 5:1), `m = 4`, `δ = 10%`.
    pub fn dataset_i() -> Self {
        Self {
            quest: QuestConfig::default(),
            pricing: PricingConfig::default(),
            targets: TargetSpec::dataset_i(),
            hierarchy: None,
            target_noise: 0.15,
            price_coupling: PriceCoupling::Sensitivity,
        }
    }

    /// The paper's **Dataset II**: ten target items, `Cost(i) = 10·i`,
    /// normal frequency (40 recommendable item/price pairs).
    pub fn dataset_ii() -> Self {
        Self {
            targets: TargetSpec::dataset_ii(),
            ..Self::dataset_i()
        }
    }

    /// A **tiny** configuration for exhaustive and differential testing:
    /// `n_transactions` transactions (≤ 64) over `n_items` non-target
    /// items (≤ 10) with `n_prices` promotion codes per item (2–4), the
    /// Dataset-I pair of target items, and small baskets — sized so that
    /// a brute-force reference implementation (`pm-oracle`) stays
    /// tractable while every code path (favorability chains, multi-code
    /// heads, basket→target coupling) is still exercised.
    pub fn tiny(n_transactions: usize, n_items: usize, n_prices: usize) -> Self {
        assert!(
            (1..=64).contains(&n_transactions),
            "tiny means ≤ 64 transactions"
        );
        assert!((1..=10).contains(&n_items), "tiny means ≤ 10 items");
        assert!((2..=4).contains(&n_prices), "tiny means 2–4 codes");
        let mut cfg = Self::dataset_i()
            .with_transactions(n_transactions)
            .with_items(n_items);
        cfg.quest.avg_txn_size = 3.0;
        cfg.quest.avg_pattern_size = 2.0;
        cfg.pricing.max_cost = 20.0;
        cfg.pricing.n_prices = n_prices;
        cfg.target_noise = 0.3;
        cfg
    }

    /// A **low-minsup pruning benchmark** preset: a single target item
    /// over a wide, pattern-rich Quest universe. At minsup fractions
    /// around 0.2–0.5% the body lattice is dominated by
    /// marginally-frequent bodies whose heads cannot beat the default
    /// rule's admission floor — exactly the region the miner's profit
    /// upper bound prunes (a single target saturates the floor's
    /// confidence arm, so admission hinges on profit alone; see
    /// DESIGN.md §14). Scale with [`Self::with_transactions`]; avoid
    /// [`Self::with_items`], which would clamp the pattern table.
    pub fn quest_low_minsup() -> Self {
        let mut cfg = Self::dataset_i();
        cfg.targets = TargetSpec::custom(vec![5.0], vec![1.0]);
        cfg.quest.n_items = 500;
        cfg.quest.n_patterns = 800;
        cfg.quest.avg_txn_size = 8.0;
        cfg.quest.avg_pattern_size = 3.0;
        cfg
    }

    /// A **targeted-workloads** preset: Dataset I widened to four target
    /// items at spread costs (\$2/\$5/\$10/\$20, frequency still falling
    /// with cost), so `items:`/`codes:` target filters carve out real
    /// sub-domains of the head space and per-item profit floors can
    /// stratify staples from the luxury tail.
    pub fn targeted_workloads() -> Self {
        let mut cfg = Self::dataset_i();
        cfg.targets = TargetSpec::custom(vec![2.0, 5.0, 10.0, 20.0], vec![8.0, 4.0, 2.0, 1.0]);
        cfg
    }

    /// Override the transaction count (builder style).
    pub fn with_transactions(mut self, n: usize) -> Self {
        self.quest.n_transactions = n;
        self
    }

    /// Override the non-target item count (builder style).
    pub fn with_items(mut self, n: usize) -> Self {
        self.quest.n_items = n;
        // Keep the pattern table sane for tiny configurations.
        self.quest.n_patterns = self.quest.n_patterns.min(n.max(1) * 2);
        self
    }

    /// Attach a synthetic hierarchy (builder style).
    pub fn with_hierarchy(mut self, h: HierarchyConfig) -> Self {
        self.hierarchy = Some(h);
        self
    }

    /// Override the basket→target coupling noise (builder style);
    /// `1.0` makes target sales independent of baskets.
    pub fn with_target_noise(mut self, noise: f64) -> Self {
        assert!((0.0..=1.0).contains(&noise), "noise must be a probability");
        self.target_noise = noise;
        self
    }

    /// Override the price coupling (builder style).
    pub fn with_price_coupling(mut self, pc: PriceCoupling) -> Self {
        self.price_coupling = pc;
        self
    }

    /// Build the catalog implied by this configuration.
    pub fn build_catalog(&self) -> Catalog {
        let mut cat = Catalog::new();
        for i in 1..=self.quest.n_items {
            cat.push(ItemDef {
                name: format!("item-{i}"),
                codes: self.pricing.codes_of(i),
                is_target: false,
            });
        }
        for (k, &cost) in self.targets.costs.iter().enumerate() {
            cat.push(ItemDef {
                name: format!("target-{}", k + 1),
                codes: self
                    .pricing
                    .codes_for_cost(pm_txn::Money::from_dollars_f64(cost)),
                is_target: true,
            });
        }
        cat
    }

    /// Generate the full dataset.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> TransactionSet {
        let catalog = self.build_catalog();
        let n_total = catalog.len();
        let hierarchy = match &self.hierarchy {
            Some(hc) => hc.build(n_total, self.quest.n_items),
            None => Hierarchy::flat(n_total),
        };
        let target_sampler = self.targets.sampler();
        let n_prices = self.pricing.n_prices;
        let baskets = self.quest.generate_with_patterns(rng);
        // Per-pattern preferred (target item, price index), sampled from
        // the very same marginal distributions (see the type-level docs).
        let prefs: Vec<(usize, u16)> = (0..self.quest.n_patterns)
            .map(|_| {
                (
                    target_sampler.sample(rng),
                    rng.gen_range(0..n_prices) as u16,
                )
            })
            .collect();
        let transactions = baskets
            .into_iter()
            .map(|(basket, pattern)| {
                let (pref_item, pref_price) = prefs[pattern];
                let noisy = rng.gen::<f64>() < self.target_noise;
                let (non_target, target_price) = match self.price_coupling {
                    PriceCoupling::Uniform => {
                        let nts = basket
                            .into_iter()
                            .map(|item| {
                                let p = rng.gen_range(0..n_prices) as u16;
                                Sale::new(ItemId(item), CodeId(p), 1)
                            })
                            .collect::<Vec<_>>();
                        let tp = if noisy {
                            rng.gen_range(0..n_prices) as u16
                        } else {
                            pref_price
                        };
                        (nts, tp)
                    }
                    PriceCoupling::Sensitivity => {
                        // θ anchored at the preferred price; uniform over
                        // [0,1] when the preference is uniform.
                        let theta = (pref_price as f64 + rng.gen::<f64>()) / n_prices as f64;
                        let b = Binomial::new(n_prices as u32 - 1, theta);
                        let nts = basket
                            .into_iter()
                            .map(|item| Sale::new(ItemId(item), CodeId(b.sample(rng) as u16), 1))
                            .collect::<Vec<_>>();
                        let tp = if noisy {
                            b.sample(rng) as u16
                        } else {
                            pref_price
                        };
                        (nts, tp)
                    }
                };
                let k = if noisy {
                    target_sampler.sample(rng)
                } else {
                    pref_item
                };
                let target_item = ItemId((self.quest.n_items + k) as u32);
                Transaction::new(non_target, Sale::new(target_item, CodeId(target_price), 1))
            })
            .collect();
        TransactionSet::new(catalog, hierarchy, transactions)
            .expect("generated dataset is valid by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_i() -> DatasetConfig {
        DatasetConfig::dataset_i()
            .with_transactions(800)
            .with_items(40)
    }

    #[test]
    fn dataset_i_layout() {
        let ds = tiny_i().generate(&mut StdRng::seed_from_u64(1));
        assert_eq!(ds.len(), 800);
        assert_eq!(ds.catalog().len(), 42);
        assert_eq!(ds.catalog().target_items().len(), 2);
        // Target costs per spec.
        let t0 = ds.catalog().item(ItemId(40));
        assert!(t0.is_target);
        assert_eq!(t0.codes[0].cost, pm_txn::Money::from_dollars(2));
        let t1 = ds.catalog().item(ItemId(41));
        assert_eq!(t1.codes[0].cost, pm_txn::Money::from_dollars(10));
    }

    #[test]
    fn every_transaction_has_one_target_sale() {
        let ds = tiny_i().generate(&mut StdRng::seed_from_u64(2));
        for t in ds.transactions() {
            assert!(ds.catalog().item(t.target_sale().item).is_target);
            assert_eq!(t.target_sale().qty, 1);
            for s in t.non_target_sales() {
                assert!(!ds.catalog().item(s.item).is_target);
                assert_eq!(s.qty, 1);
            }
        }
    }

    #[test]
    fn zipf_frequency_holds() {
        let ds = tiny_i().generate(&mut StdRng::seed_from_u64(3));
        let cheap = ds
            .transactions()
            .iter()
            .filter(|t| t.target_sale().item == ItemId(40))
            .count();
        let dear = ds.len() - cheap;
        let ratio = cheap as f64 / dear.max(1) as f64;
        assert!(ratio > 3.0 && ratio < 8.0, "ratio {ratio}");
    }

    #[test]
    fn prices_spread_over_grid() {
        let ds = tiny_i().generate(&mut StdRng::seed_from_u64(4));
        let mut seen = [false; 4];
        for t in ds.transactions() {
            seen[t.target_sale().code.index()] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 4 target prices occur");
    }

    #[test]
    fn dataset_ii_layout() {
        let ds = DatasetConfig::dataset_ii()
            .with_transactions(500)
            .with_items(30)
            .generate(&mut StdRng::seed_from_u64(5));
        assert_eq!(ds.catalog().target_items().len(), 10);
        // 40 recommendable item/price pairs, as the paper notes.
        let pairs: usize = ds
            .catalog()
            .target_items()
            .iter()
            .map(|&t| ds.catalog().item(t).codes.len())
            .sum();
        assert_eq!(pairs, 40);
    }

    #[test]
    fn hierarchy_attachment() {
        let ds = tiny_i()
            .with_hierarchy(HierarchyConfig {
                branching: 5,
                levels: 2,
            })
            .generate(&mut StdRng::seed_from_u64(6));
        assert!(ds.hierarchy().n_concepts() > 0);
        assert!(ds.hierarchy().validate().is_ok());
        // Targets are children of ANY: no concept ancestors.
        for &t in &ds.catalog().target_items() {
            assert!(ds.hierarchy().item_ancestors(t).is_empty());
        }
    }

    #[test]
    fn coupling_concentrates_targets_per_pattern() {
        // With low noise, transactions sharing a dominant pattern share a
        // target pair; with noise = 1 the association vanishes. Proxy
        // check: the number of distinct (basket-signature → target) maps.
        let coupled = tiny_i()
            .with_target_noise(0.0)
            .generate(&mut StdRng::seed_from_u64(31));
        // Group by full basket item set; within a group the target pair
        // must be constant when noise = 0 *and* the group is seeded by
        // one pattern. Identical baskets from the same pattern dominate,
        // so require at least 80% of duplicate-basket groups to agree.
        use std::collections::HashMap;
        type Pair = (u32, u16);
        let mut groups: HashMap<Vec<Pair>, Vec<Pair>> = HashMap::new();
        for t in coupled.transactions() {
            let key: Vec<(u32, u16)> = t
                .non_target_sales()
                .iter()
                .map(|s| (s.item.0, 0u16))
                .collect();
            let target = (t.target_sale().item.0, t.target_sale().code.0);
            groups.entry(key).or_default().push(target);
        }
        let multi: Vec<_> = groups.values().filter(|v| v.len() >= 2).collect();
        assert!(!multi.is_empty(), "need duplicate baskets to test");
        let agreeing = multi
            .iter()
            .filter(|v| {
                let items_agree = v.iter().all(|t| t.0 == v[0].0);
                items_agree
            })
            .count();
        assert!(
            agreeing * 10 >= multi.len() * 6,
            "only {agreeing}/{} duplicate-basket groups agree on the target item",
            multi.len()
        );
    }

    #[test]
    fn full_noise_reproduces_independence() {
        let ds = tiny_i()
            .with_target_noise(1.0)
            .with_price_coupling(PriceCoupling::Uniform)
            .generate(&mut StdRng::seed_from_u64(32));
        assert_eq!(ds.len(), 800);
    }

    #[test]
    fn sensitivity_couples_prices_within_basket() {
        // Under the sensitivity model, the target price index correlates
        // with the mean non-target price index; under Uniform it doesn't.
        let corr = |pc: PriceCoupling| -> f64 {
            let ds = tiny_i()
                .with_transactions(4000)
                .with_price_coupling(pc)
                .generate(&mut StdRng::seed_from_u64(33));
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            for t in ds.transactions() {
                if t.non_target_sales().is_empty() {
                    continue;
                }
                let mean_nt: f64 = t
                    .non_target_sales()
                    .iter()
                    .map(|s| s.code.0 as f64)
                    .sum::<f64>()
                    / t.non_target_sales().len() as f64;
                xs.push(mean_nt);
                ys.push(t.target_sale().code.0 as f64);
            }
            let n = xs.len() as f64;
            let mx = xs.iter().sum::<f64>() / n;
            let my = ys.iter().sum::<f64>() / n;
            let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
            let vx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
            let vy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
            cov / (vx.sqrt() * vy.sqrt())
        };
        let coupled = corr(PriceCoupling::Sensitivity);
        let uniform = corr(PriceCoupling::Uniform);
        assert!(coupled > 0.4, "sensitivity correlation {coupled}");
        assert!(uniform.abs() < 0.1, "uniform correlation {uniform}");
    }

    #[test]
    fn price_marginal_stays_uniform_under_sensitivity() {
        // Uniform in expectation over pattern preferences; the realized
        // distribution is weighted by (skewed) pattern usage, so allow a
        // generous band.
        let ds = tiny_i()
            .with_transactions(6000)
            .generate(&mut StdRng::seed_from_u64(34));
        let mut counts = [0u32; 4];
        for t in ds.transactions() {
            counts[t.target_sale().code.index()] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / 6000.0;
            assert!(frac > 0.10 && frac < 0.45, "{counts:?}");
        }
    }

    #[test]
    fn tiny_preset_is_tiny() {
        let ds = DatasetConfig::tiny(20, 6, 3).generate(&mut StdRng::seed_from_u64(7));
        assert_eq!(ds.len(), 20);
        assert_eq!(ds.catalog().len(), 8); // 6 non-target + 2 targets
        for (_, def) in ds.catalog().iter() {
            assert_eq!(def.codes.len(), 3);
        }
        assert!(ds.catalog().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "tiny")]
    fn tiny_preset_rejects_large_configs() {
        let _ = DatasetConfig::tiny(1000, 6, 3);
    }

    #[test]
    fn quest_low_minsup_layout() {
        let cfg = DatasetConfig::quest_low_minsup();
        assert_eq!(cfg.quest.n_items, 500);
        assert_eq!(cfg.quest.n_patterns, 800);
        let ds = cfg
            .with_transactions(600)
            .generate(&mut StdRng::seed_from_u64(8));
        assert_eq!(ds.len(), 600);
        // A single target item: the dominance floor's confidence arm
        // saturates, which is what makes the preset a pruning benchmark.
        assert_eq!(ds.catalog().target_items().len(), 1);
        assert_eq!(ds.catalog().len(), 501);
        let t = ds.catalog().item(ItemId(500));
        assert!(t.is_target);
        assert_eq!(t.codes[0].cost, pm_txn::Money::from_dollars(5));
        assert!(ds.catalog().validate().is_ok());
    }

    #[test]
    fn deterministic() {
        let a = tiny_i().generate(&mut StdRng::seed_from_u64(9));
        let b = tiny_i().generate(&mut StdRng::seed_from_u64(9));
        assert_eq!(a.transactions(), b.transactions());
    }
}
