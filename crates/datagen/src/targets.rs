//! Target-sale distributions (§5.2).
//!
//! Every generated transaction receives exactly one target sale. The
//! target *item* is drawn from a frequency distribution over the target
//! items; the *price* is drawn uniformly from the item's price grid; the
//! quantity is 1 (as in the paper's synthetic data).
//!
//! * **Dataset I**: two target items with costs \$2 and \$10; the \$2 item
//!   occurs five times as frequently (a two-rank Zipf) — "the higher the
//!   cost, the fewer the sales".
//! * **Dataset II**: ten target items with `Cost(i) = 10·i`; frequency is
//!   normal over the item index — "most customers buy target items with
//!   the cost around the mean". The paper does not state σ; we use σ = 2
//!   around μ = 5.5 (documented substitution).

use pm_stats::{Discrete, Normal};
use pm_txn::{Catalog, Money};
use serde::{Deserialize, Serialize};

/// A ready-made `--min-profit-per-item` spec stratifying a catalog's
/// target items by cost: each target item's floor is `frac` of its unit
/// cost in dollars, so staples mine under low floors and the luxury tail
/// under high ones ("Beyond Frequency"-style per-item thresholds).
/// Non-target items get no entry. The result round-trips through
/// [`pm_txn::parse_item_floors`].
pub fn cost_floor_csv(catalog: &Catalog, frac: f64) -> String {
    catalog
        .target_items()
        .into_iter()
        .map(|i| {
            let def = catalog.item(i);
            let cost = def.codes[0].cost.cents() as f64 / 100.0;
            format!("{}={}", def.name, cost * frac)
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Specification of the target items and their sales frequencies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetSpec {
    /// Cost of each target item, in dollars.
    pub costs: Vec<f64>,
    /// Relative sales frequency of each target item (unnormalized).
    pub weights: Vec<f64>,
}

impl TargetSpec {
    /// Dataset I: costs \$2 and \$10 with 5:1 frequency.
    pub fn dataset_i() -> Self {
        Self {
            costs: vec![2.0, 10.0],
            weights: vec![5.0, 1.0],
        }
    }

    /// Dataset II: ten items, `Cost(i) = 10·i`, normal frequency over the
    /// index with μ = 5.5, σ = 2.
    pub fn dataset_ii() -> Self {
        let normal = Normal::new(5.5, 2.0);
        let costs = (1..=10).map(|i| 10.0 * i as f64).collect();
        let weights = (1..=10).map(|i| normal.pdf(i as f64)).collect();
        Self { costs, weights }
    }

    /// A custom specification.
    pub fn custom(costs: Vec<f64>, weights: Vec<f64>) -> Self {
        Self { costs, weights }
    }

    /// Number of target items.
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// True when no target items are specified (invalid for generation).
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }

    /// Cost of target item `k` (0-based) as [`Money`].
    pub fn cost(&self, k: usize) -> Money {
        Money::from_dollars_f64(self.costs[k])
    }

    /// The frequency sampler over target item indices.
    pub fn sampler(&self) -> Discrete {
        assert_eq!(
            self.costs.len(),
            self.weights.len(),
            "costs/weights length mismatch"
        );
        assert!(!self.is_empty(), "need at least one target item");
        Discrete::new(&self.weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dataset_i_ratio() {
        let spec = TargetSpec::dataset_i();
        assert_eq!(spec.len(), 2);
        assert_eq!(spec.cost(0), Money::from_dollars(2));
        assert_eq!(spec.cost(1), Money::from_dollars(10));
        let d = spec.sampler();
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 2];
        for _ in 0..60_000 {
            counts[d.sample(&mut rng)] += 1;
        }
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((ratio - 5.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn dataset_ii_peaks_at_mean() {
        let spec = TargetSpec::dataset_ii();
        assert_eq!(spec.len(), 10);
        assert_eq!(spec.cost(9), Money::from_dollars(100));
        // Weights peak at indices 5/6 (costs 50/60) and fall at the tails.
        let w = &spec.weights;
        assert!(w[4] > w[0] && w[5] > w[9]);
        assert!((w[4] - w[5]).abs() < 1e-12, "symmetric around 5.5");
        assert!(w[0] < w[2]);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_rejected() {
        TargetSpec::custom(vec![1.0], vec![1.0, 2.0]).sampler();
    }

    #[test]
    fn cost_floor_csv_round_trips_through_the_cli_parser() {
        let ds = crate::DatasetConfig::targeted_workloads()
            .with_transactions(50)
            .with_items(10)
            .generate(&mut StdRng::seed_from_u64(4));
        let catalog = ds.catalog();
        let csv = cost_floor_csv(catalog, 0.5);
        let floors = pm_txn::parse_item_floors(&csv, catalog).unwrap();
        let targets = catalog.target_items();
        assert_eq!(floors.len(), targets.len());
        assert_eq!(targets.len(), 4, "targeted_workloads has four targets");
        for (item, floor) in floors {
            let def = catalog.item(item);
            assert!(def.is_target, "floors cover targets only");
            let cost = def.codes[0].cost.cents() as f64 / 100.0;
            assert_eq!(floor, cost * 0.5, "{}", def.name);
        }
    }
}
