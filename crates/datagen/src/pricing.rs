//! The paper's price/cost augmentation of Quest transactions (§5.2).
//!
//! "For item *i*, we generate the cost `Cost(i) = c/i`, where `c` is the
//! maximum cost of a single item, and `m` prices
//! `P_j = (1 + j·δ)·Cost(i)`, `j = 1..m`. We use `m = 4` and `δ = 10%`."
//! All promotion codes of an item share a single cost and unit packing, so
//! the profit of item `i` at price `P_j` is exactly `j·δ·Cost(i)`.

use pm_txn::{Money, PromotionCode};
use serde::{Deserialize, Serialize};

/// Parameters of the price grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PricingConfig {
    /// `c` — the maximum cost of a single (non-target) item, in dollars.
    /// Unstated in the paper; `$100` is our documented default (see
    /// DESIGN.md §5).
    pub max_cost: f64,
    /// `m` — number of prices per item.
    pub n_prices: usize,
    /// `δ` — markup step.
    pub delta: f64,
}

impl Default for PricingConfig {
    fn default() -> Self {
        Self {
            max_cost: 100.0,
            n_prices: 4,
            delta: 0.10,
        }
    }
}

impl PricingConfig {
    /// The cost of non-target item `i` (1-based, as in the paper).
    pub fn cost_of(&self, i_one_based: usize) -> Money {
        assert!(i_one_based >= 1, "items are numbered from 1");
        Money::from_dollars_f64(self.max_cost / i_one_based as f64)
    }

    /// The `m` promotion codes for an item of the given cost: prices
    /// `P_j = (1 + j·δ)·cost`, `j = 1..=m`, all with unit packing and the
    /// shared cost. Code `CodeId(j-1)` carries price `P_j`, so *lower code
    /// ids are cheaper and more favorable*.
    pub fn codes_for_cost(&self, cost: Money) -> Vec<PromotionCode> {
        (1..=self.n_prices)
            .map(|j| {
                let price =
                    Money::from_dollars_f64(cost.as_dollars() * (1.0 + j as f64 * self.delta));
                PromotionCode::unit(price, cost)
            })
            .collect()
    }

    /// Convenience: the codes of non-target item `i` (1-based).
    pub fn codes_of(&self, i_one_based: usize) -> Vec<PromotionCode> {
        self.codes_for_cost(self.cost_of(i_one_based))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_is_c_over_i() {
        let p = PricingConfig::default();
        assert_eq!(p.cost_of(1), Money::from_dollars(100));
        assert_eq!(p.cost_of(4), Money::from_dollars(25));
        assert_eq!(p.cost_of(1000), Money::from_cents(10));
    }

    #[test]
    fn price_grid_matches_formula() {
        let p = PricingConfig::default();
        let codes = p.codes_for_cost(Money::from_dollars(10));
        assert_eq!(codes.len(), 4);
        let prices: Vec<i64> = codes.iter().map(|c| c.price.cents()).collect();
        assert_eq!(prices, vec![1100, 1200, 1300, 1400]);
        assert!(codes.iter().all(|c| c.cost == Money::from_dollars(10)));
        assert!(codes.iter().all(|c| c.pack_qty == 1));
    }

    #[test]
    fn profit_at_price_j_is_j_delta_cost() {
        let p = PricingConfig::default();
        let codes = p.codes_for_cost(Money::from_dollars(2));
        for (j0, code) in codes.iter().enumerate() {
            let expect = Money::from_dollars_f64(2.0 * 0.10 * (j0 + 1) as f64);
            assert_eq!(code.margin(), expect);
        }
    }

    #[test]
    fn lower_code_ids_are_more_favorable() {
        let p = PricingConfig::default();
        let codes = p.codes_of(3);
        for a in 0..codes.len() {
            for b in (a + 1)..codes.len() {
                assert!(codes[a].more_favorable_than(&codes[b]));
            }
        }
    }

    #[test]
    fn rounding_stays_on_cents() {
        // Cost(3) = $33.333… rounds to $33.33; prices derive from the
        // rounded cost so margins stay exact cents.
        let p = PricingConfig::default();
        let cost = p.cost_of(3);
        assert_eq!(cost, Money::from_cents(3333));
        let codes = p.codes_for_cost(cost);
        assert_eq!(codes[0].price, Money::from_cents(3666));
    }

    #[test]
    #[should_panic]
    fn zero_based_index_rejected() {
        let _ = PricingConfig::default().cost_of(0);
    }
}
