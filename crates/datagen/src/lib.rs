//! Synthetic data generation for profit mining (§5.2 of the paper).
//!
//! The paper's evaluation data comes from the **IBM Almaden Quest**
//! synthetic transaction generator, "modified to have price and cost for
//! each item in a transaction". The original binary is long gone, so this
//! crate re-implements it from its published specification (Agrawal &
//! Srikant, *Fast Algorithms for Mining Association Rules*, VLDB 1994):
//! potential maximal itemsets with exponentially distributed weights,
//! correlation between consecutive patterns, per-pattern corruption
//! levels, and Poisson-distributed sizes ([`quest`]).
//!
//! On top of that sit the paper's augmentations:
//!
//! * [`pricing`] — `Cost(i) = c / i` and `m` prices
//!   `P_j = (1 + j·δ)·Cost(i)` per item (defaults `m = 4`, `δ = 10%`);
//! * [`targets`] — the target-sale distributions of **Dataset I** (two
//!   target items, costs \$2 and \$10, Zipf 5:1) and **Dataset II** (ten
//!   target items, `Cost(i) = 10·i`, normal frequency around the mean);
//! * [`config`] — one-stop [`DatasetConfig`] presets that produce a
//!   validated [`pm_txn::TransactionSet`];
//! * [`hierarchy_gen`] — optional synthetic concept hierarchies for
//!   multi-level mining experiments (the paper's figures use flat data;
//!   hierarchies are exercised by the ablation benches).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod config;
pub mod hierarchy_gen;
pub mod pricing;
pub mod quest;
pub mod targets;

pub use config::DatasetConfig;
pub use hierarchy_gen::HierarchyConfig;
pub use pricing::PricingConfig;
pub use quest::QuestConfig;
pub use targets::TargetSpec;
