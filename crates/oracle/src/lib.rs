//! Paper-literal reference implementation of profit mining — the oracle.
//!
//! This crate reimplements the whole pipeline of *"Profit Mining: From
//! Patterns to Actions"* (EDBT 2002) the way the paper describes it, with
//! **no optimizations whatsoever**:
//!
//! * `MOA(H)` is materialized by direct lattice enumeration over the
//!   transactions (§2, Definitions 2–3), with favorability and concept
//!   ancestry recomputed from the raw catalog/hierarchy fields;
//! * candidate rule bodies are enumerated **brute force** — every subset
//!   of generalized sales up to the length cap, with only the paper's
//!   structural "no body element generalizes another" constraint
//!   (Definition 4) and *no* support-based pruning;
//! * support, confidence, `Prof_ru` and `Prof_re` (§3.1) are computed by
//!   rescanning every transaction for every candidate rule, under both
//!   saving and buying MOA;
//! * MPF recommendation (§3.2) materializes the complete ranked rule list
//!   (tie-chain: `Prof_re`, support, body size, generation order) with the
//!   default-rule fallback, and serves a customer by linear scan.
//!
//! The point is **independence**: nothing here depends on `pm-rules` or
//! `pm-core` — only on the `pm-txn` data model (and even there the derived
//! structures `Moa`/`favorable_codes`/`item_ancestors` are deliberately
//! reimplemented from the raw price/packing/parent fields). The
//! differential harness in the workspace `tests/` directory asserts that
//! the optimized stack agrees with this oracle bit for bit; a shared bug
//! would have to be implemented twice, from two different readings of the
//! paper, to slip through.
//!
//! Everything is `O(scary)` by design — keep inputs tiny (≤ a few dozen
//! transactions, ≤ ~10 items, a handful of codes).

#![warn(missing_docs)]
#![deny(unsafe_code)]

use pm_txn::{
    Catalog, CodeId, ConceptId, GenSale, Hierarchy, ItemId, PromotionCode, QuantityModel, Sale,
    TargetFilter, Transaction, TransactionSet,
};
use std::cmp::Ordering;
use std::sync::Arc;

/// Which profit notion drives ranking — an independent mirror of the
/// optimized stack's `ProfitMode`, redefined here so that the oracle does
/// not link against `pm-rules`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OracleProfitMode {
    /// Real generated dollars (`PROF±MOA`).
    #[default]
    Profit,
    /// Binary hit indicator (`CONF±MOA`): `Prof_re` degrades to confidence.
    Confidence,
}

/// Oracle mining parameters.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Minimum support as an absolute transaction count (≥ 1).
    pub min_support_count: u32,
    /// Maximum body length to enumerate.
    pub max_body_len: usize,
    /// Mining-on-availability switch: with `false`, promotion codes only
    /// match exactly (the paper's `−MOA` baselines).
    pub moa: bool,
    /// Saving or buying MOA quantity crediting (§3.1).
    pub quantity: QuantityModel,
    /// Targeted mining: only rules whose head falls inside the filter are
    /// kept, and the default rule restricts its arg-max to in-target heads
    /// (falling back to the unrestricted arg-max when no head qualifies).
    pub target: Option<TargetFilter>,
    /// Scalar minimum `Prof_ru` admission floor (the PR 7 `--min-profit`).
    pub min_rule_profit: Option<f64>,
    /// Per-item minimum `Prof_ru` floors; an item's entry overrides the
    /// scalar floor for heads on that item.
    pub min_profit_per_item: Vec<(ItemId, f64)>,
}

impl OracleConfig {
    /// A config with the given support count and body cap, MOA on, saving
    /// quantities, no target, no profit floors.
    pub fn new(min_support_count: u32, max_body_len: usize) -> Self {
        Self {
            min_support_count,
            max_body_len,
            moa: true,
            quantity: QuantityModel::Saving,
            target: None,
            min_rule_profit: None,
            min_profit_per_item: Vec::new(),
        }
    }
}

/// One oracle rule `{g₁…g_k} → ⟨I, P⟩` with statistics obtained by full
/// rescans. The body is stored as resolved [`GenSale`]s in the oracle's
/// node-id order (which reproduces the optimized interner's first-occurrence
/// order, so resolved bodies compare element-wise across the two stacks).
#[derive(Debug, Clone, PartialEq)]
pub struct OracleRule {
    /// Body: generalized non-target sales, none generalizing another.
    pub body: Vec<GenSale>,
    /// Head target item.
    pub item: ItemId,
    /// Head promotion code.
    pub code: CodeId,
    /// `N` — transactions matched by the body.
    pub body_count: u32,
    /// Matched transactions whose target the head generalizes (= support).
    pub hits: u32,
    /// `Prof_ru` — total generated profit in dollars.
    pub profit: f64,
    /// Generation sequence number (enumeration order); `u32::MAX` for the
    /// default rule.
    pub gen_index: u32,
}

impl OracleRule {
    /// Support count (= hits, Definition 5).
    pub fn support_count(&self) -> u32 {
        self.hits
    }

    /// `Conf = hits / N` (0 when the body matches nothing).
    pub fn confidence(&self) -> f64 {
        if self.body_count == 0 {
            0.0
        } else {
            self.hits as f64 / self.body_count as f64
        }
    }

    /// `Prof_ru` under `mode` — dollars, or the hit count.
    pub fn rule_profit(&self, mode: OracleProfitMode) -> f64 {
        match mode {
            OracleProfitMode::Profit => self.profit,
            OracleProfitMode::Confidence => self.hits as f64,
        }
    }

    /// `Prof_re = Prof_ru / N`.
    pub fn recommendation_profit(&self, mode: OracleProfitMode) -> f64 {
        if self.body_count == 0 {
            0.0
        } else {
            self.rule_profit(mode) / self.body_count as f64
        }
    }

    /// Body length.
    pub fn body_len(&self) -> usize {
        self.body.len()
    }
}

/// Compare two oracle rules by MPF rank (§3.2, Definition 6):
/// larger `Prof_re`, then larger support, then smaller body, then earlier
/// generation. `Ordering::Greater` means `a` ranks higher.
pub fn mpf_cmp(a: &OracleRule, b: &OracleRule, mode: OracleProfitMode) -> Ordering {
    a.recommendation_profit(mode)
        .total_cmp(&b.recommendation_profit(mode))
        .then_with(|| a.support_count().cmp(&b.support_count()))
        .then_with(|| b.body_len().cmp(&a.body_len()))
        .then_with(|| b.gen_index.cmp(&a.gen_index))
}

/// The reference pipeline: built once per dataset + config, it enumerates
/// everything up front and answers ranking/recommendation queries for
/// either profit mode.
#[derive(Debug)]
pub struct Oracle {
    config: OracleConfig,
    catalog: Arc<Catalog>,
    hierarchy: Arc<Hierarchy>,
    txns: Vec<Transaction>,
    /// The `MOA(H)` nodes occurring in ≥ 1 transaction, in first-occurrence
    /// order (Definition 3 enumeration order within a transaction).
    nodes: Vec<GenSale>,
    /// Every admissible head: `(target item, code)` pairs in catalog order.
    heads: Vec<(ItemId, CodeId)>,
    /// Every enumerated candidate rule with ≥ 1 hit, in generation order
    /// (`gen_index` = position). Includes below-minsup rules.
    all_rules: Vec<OracleRule>,
    /// The rules with `hits ≥ min_support_count`, renumbered 0‥ in
    /// generation order — the set the optimized miner must reproduce.
    frequent: Vec<OracleRule>,
    /// Per-head `(hits, profit)` over **all** transactions, for the
    /// default rule.
    head_totals: Vec<(u32, f64)>,
}

impl Oracle {
    /// Run the full reference pipeline over a dataset.
    ///
    /// # Panics
    ///
    /// Panics when the dataset is empty, has no admissible head, or
    /// `min_support_count` is 0 — the optimized stack rejects all three.
    // `!(profit < floor)` must stay spelled exactly like the emitter's
    // `profit < mp → skip` gate: NaN profits are admitted on both sides.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn build(data: &TransactionSet, config: OracleConfig) -> Self {
        assert!(config.min_support_count >= 1, "support count must be ≥ 1");
        assert!(!data.is_empty(), "empty dataset");
        let mut oracle = Self {
            config,
            catalog: data.catalog_arc().clone(),
            hierarchy: data.hierarchy_arc().clone(),
            txns: data.transactions().to_vec(),
            nodes: Vec::new(),
            heads: Vec::new(),
            all_rules: Vec::new(),
            frequent: Vec::new(),
            head_totals: Vec::new(),
        };
        oracle.collect_nodes();
        oracle.collect_heads();
        assert!(!oracle.heads.is_empty(), "no admissible rule head");
        oracle.enumerate_rules();
        // Admission: support, target membership, and the per-head profit
        // floor — the same filters, in the same float comparisons, that
        // the optimized emitter applies at generation time.
        oracle.frequent = oracle
            .all_rules
            .iter()
            .filter(|r| {
                r.hits >= oracle.config.min_support_count
                    && oracle.head_in_target(r.item, r.code)
                    && !(r.profit < oracle.head_floor(r.item))
            })
            .cloned()
            .enumerate()
            .map(|(i, mut r)| {
                r.gen_index = i as u32;
                r
            })
            .collect();
        oracle.head_totals = oracle.compute_head_totals();
        oracle
    }

    /// Does the head `(item, code)` fall inside the configured target
    /// filter (vacuously true without one)?
    pub fn head_in_target(&self, item: ItemId, code: CodeId) -> bool {
        match &self.config.target {
            None => true,
            Some(t) => t.matches(&self.hierarchy, item, code),
        }
    }

    /// The effective `Prof_ru` admission floor for heads on `item`: the
    /// per-item entry when present, else the scalar floor, else `−∞`.
    pub fn head_floor(&self, item: ItemId) -> f64 {
        self.config
            .min_profit_per_item
            .iter()
            .find(|(i, _)| *i == item)
            .map(|&(_, f)| f)
            .or(self.config.min_rule_profit)
            .unwrap_or(f64::NEG_INFINITY)
    }

    /// The enumerated lattice nodes in first-occurrence order.
    pub fn nodes(&self) -> &[GenSale] {
        &self.nodes
    }

    /// The head universe in catalog order.
    pub fn heads(&self) -> &[(ItemId, CodeId)] {
        &self.heads
    }

    /// Every candidate rule with ≥ 1 hit (including below-minsup ones),
    /// in generation order.
    pub fn all_rules(&self) -> &[OracleRule] {
        &self.all_rules
    }

    /// The rules at or above minimum support, `gen_index` renumbered to
    /// match the optimized miner's emission order.
    pub fn frequent_rules(&self) -> &[OracleRule] {
        &self.frequent
    }

    /// Number of transactions.
    pub fn n_transactions(&self) -> usize {
        self.txns.len()
    }

    /// The default rule `∅ → g` (§3.1): over all transactions, the head
    /// maximizing `Prof_re(∅ → g)` under `mode` (last maximal head on
    /// ties, matching the optimized stack's `max_by`). `gen_index` is
    /// `u32::MAX` so it loses every tie-break.
    pub fn default_rule(&self, mode: OracleProfitMode) -> OracleRule {
        let score = |i: usize| match mode {
            OracleProfitMode::Profit => self.head_totals[i].1,
            OracleProfitMode::Confidence => self.head_totals[i].0 as f64,
        };
        // Under a target filter the arg-max restricts to in-target heads;
        // when none qualifies it falls back to the full head universe so
        // the default rule (which must always exist) stays well-defined.
        let mut domain: Vec<usize> = (0..self.heads.len())
            .filter(|&h| self.head_in_target(self.heads[h].0, self.heads[h].1))
            .collect();
        if domain.is_empty() {
            domain = (0..self.heads.len()).collect();
        }
        let mut best = domain[0];
        for &h in &domain[1..] {
            if score(h).total_cmp(&score(best)) != Ordering::Less {
                best = h;
            }
        }
        let (item, code) = self.heads[best];
        OracleRule {
            body: Vec::new(),
            item,
            code,
            body_count: self.txns.len() as u32,
            hits: self.head_totals[best].0,
            profit: self.head_totals[best].1,
            gen_index: u32::MAX,
        }
    }

    /// The complete MPF-ranked rule list under `mode`: every frequent rule
    /// plus the default rule, highest rank first.
    pub fn ranked_rules(&self, mode: OracleProfitMode) -> Vec<OracleRule> {
        let mut rules = self.frequent.clone();
        rules.push(self.default_rule(mode));
        rules.sort_by(|a, b| mpf_cmp(b, a, mode));
        rules
    }

    /// Recommend for a customer (their non-target sales): the highest
    /// ranked rule whose body matches, falling back to the default rule
    /// (whose empty body matches everyone).
    pub fn recommend(&self, sales: &[Sale], mode: OracleProfitMode) -> OracleRule {
        self.ranked_rules(mode)
            .into_iter()
            .find(|r| self.body_matches(&r.body, sales))
            .expect("the default rule matches every customer")
    }

    /// Exhaustive top-N assortment reference (PROFSET-flavored): among
    /// the distinct `(item, code)` pairs appearing in the ranked list
    /// (first-occurrence rank order — the §3.2 tie-chain decides the
    /// candidate order), find the size-`min(n, #candidates)` subset `S`
    /// maximizing the joint recommendation profit
    ///
    /// ```text
    /// score(S) = Σ_customers Prof_re(highest-ranked matching rule whose head ∈ S)
    /// ```
    ///
    /// where each training transaction's non-target sales stand in for a
    /// customer and a customer with no matching in-`S` rule contributes 0.
    /// Customers are summed in transaction order and subsets enumerated
    /// in lexicographic candidate-index order, keeping strictly better
    /// scores only — ties resolve to the lexicographically smallest
    /// subset, which the optimized greedy must reproduce on instances
    /// where greedy is exact.
    pub fn assortment(&self, n: usize, mode: OracleProfitMode) -> (Vec<(ItemId, CodeId)>, f64) {
        let ranked = self.ranked_rules(mode);
        let mut cands: Vec<(ItemId, CodeId)> = Vec::new();
        for r in &ranked {
            let pair = (r.item, r.code);
            if !cands.contains(&pair) {
                cands.push(pair);
            }
        }
        // Per customer: the deduped (candidate, Prof_re) menu in rank
        // order. The first menu entry whose candidate is in S is exactly
        // the highest-ranked matching rule with head in S, because dedup
        // keeps the first occurrence per pair.
        let menus: Vec<Vec<(usize, f64)>> = self
            .txns
            .iter()
            .map(|t| {
                let mut menu: Vec<(usize, f64)> = Vec::new();
                for r in &ranked {
                    if !self.body_matches(&r.body, t.non_target_sales()) {
                        continue;
                    }
                    let ci = cands
                        .iter()
                        .position(|&p| p == (r.item, r.code))
                        .expect("every ranked head is a candidate");
                    if !menu.iter().any(|&(c, _)| c == ci) {
                        menu.push((ci, r.recommendation_profit(mode)));
                    }
                }
                menu
            })
            .collect();
        let k = n.min(cands.len());

        fn score_subset(menus: &[Vec<(usize, f64)>], subset: &[usize]) -> f64 {
            let mut total = 0.0;
            for menu in menus {
                if let Some(&(_, p)) = menu.iter().find(|&&(c, _)| subset.contains(&c)) {
                    total += p;
                }
            }
            total
        }

        fn search(
            start: usize,
            n_cands: usize,
            k: usize,
            subset: &mut Vec<usize>,
            menus: &[Vec<(usize, f64)>],
            best: &mut Option<(Vec<usize>, f64)>,
        ) {
            if subset.len() == k {
                let s = score_subset(menus, subset);
                let better = match best {
                    None => true,
                    Some((_, b)) => s.total_cmp(b) == Ordering::Greater,
                };
                if better {
                    *best = Some((subset.clone(), s));
                }
                return;
            }
            for c in start..n_cands {
                if n_cands - c < k - subset.len() {
                    break;
                }
                subset.push(c);
                search(c + 1, n_cands, k, subset, menus, best);
                subset.pop();
            }
        }

        let mut best = None;
        search(0, cands.len(), k, &mut Vec::new(), &menus, &mut best);
        let (subset, score) = best.expect("k ≤ #candidates, so some subset exists");
        (subset.into_iter().map(|ci| cands[ci]).collect(), score)
    }

    /// Does every body element generalize some sale (Definition 3)?
    pub fn body_matches(&self, body: &[GenSale], sales: &[Sale]) -> bool {
        body.iter()
            .all(|&g| sales.iter().any(|s| self.generalizes_sale(g, s)))
    }

    // ------------------------------------------------------------------
    // MOA(H) primitives, recomputed from raw fields every time.
    // ------------------------------------------------------------------

    fn code(&self, item: ItemId, code: CodeId) -> &PromotionCode {
        &self.catalog.item(item).codes[code.index()]
    }

    /// `p ⪯ r` weakly: no worse price, no smaller packing (§2).
    fn weakly_favorable(p: &PromotionCode, r: &PromotionCode) -> bool {
        p.price <= r.price && p.pack_qty >= r.pack_qty
    }

    /// `p ≺ r` strictly: weakly favorable and better on some axis.
    fn strictly_favorable(p: &PromotionCode, r: &PromotionCode) -> bool {
        Self::weakly_favorable(p, r) && (p.price < r.price || p.pack_qty > r.pack_qty)
    }

    /// Transitive concept ancestors of `item`, recomputed by a naive
    /// parent walk, sorted ascending.
    fn item_ancestors(&self, item: ItemId) -> Vec<ConceptId> {
        let mut frontier: Vec<ConceptId> = self.hierarchy.item_parents(item).to_vec();
        self.close_ancestors(&mut frontier)
    }

    /// Transitive concept ancestors of `concept` (excluding itself; the
    /// hierarchy is acyclic), sorted ascending.
    fn concept_ancestors(&self, concept: ConceptId) -> Vec<ConceptId> {
        let mut frontier: Vec<ConceptId> = self.hierarchy.concept_parents(concept).to_vec();
        self.close_ancestors(&mut frontier)
    }

    fn close_ancestors(&self, frontier: &mut Vec<ConceptId>) -> Vec<ConceptId> {
        let mut out: Vec<ConceptId> = Vec::new();
        while let Some(c) = frontier.pop() {
            if !out.contains(&c) {
                out.push(c);
                frontier.extend_from_slice(self.hierarchy.concept_parents(c));
            }
        }
        out.sort();
        out
    }

    /// Does generalized sale `g` generalize the concrete sale `s`
    /// (reflexive on the code axis, Definition 3 (ii))?
    fn generalizes_sale(&self, g: GenSale, s: &Sale) -> bool {
        match g {
            GenSale::Concept(c) => self.item_ancestors(s.item).contains(&c),
            GenSale::Item(i) => i == s.item,
            GenSale::ItemCode(i, p) => {
                i == s.item
                    && if self.config.moa {
                        Self::weakly_favorable(self.code(i, p), self.code(s.item, s.code))
                    } else {
                        p == s.code
                    }
            }
        }
    }

    /// Is `a` a **proper** ancestor of `b` in `MOA(H)`?
    fn strictly_generalizes(&self, a: GenSale, b: GenSale) -> bool {
        match (a, b) {
            (GenSale::Concept(ca), GenSale::Concept(cb)) => {
                self.concept_ancestors(cb).contains(&ca)
            }
            (GenSale::Concept(c), GenSale::Item(i))
            | (GenSale::Concept(c), GenSale::ItemCode(i, _)) => self.item_ancestors(i).contains(&c),
            (GenSale::Item(i), GenSale::ItemCode(j, _)) => i == j,
            (GenSale::ItemCode(i, p), GenSale::ItemCode(j, q)) => {
                self.config.moa
                    && i == j
                    && p != q
                    && Self::strictly_favorable(self.code(i, p), self.code(j, q))
            }
            _ => false,
        }
    }

    /// Either node generalizes the other — bodies may not contain such a
    /// pair (Definition 4).
    fn related(&self, a: GenSale, b: GenSale) -> bool {
        self.strictly_generalizes(a, b) || self.strictly_generalizes(b, a)
    }

    /// The generated profit `p(r, t)` of head `(item, code)` on a target
    /// sale (§3.1), or `None` when the head does not generalize it.
    fn head_profit(&self, item: ItemId, code: CodeId, target: &Sale) -> Option<f64> {
        if item != target.item {
            return None;
        }
        let head = self.code(item, code);
        let rec = self.code(target.item, target.code);
        let accepted = if self.config.moa {
            Self::weakly_favorable(head, rec)
        } else {
            code == target.code
        };
        if !accepted {
            return None;
        }
        let margin = (head.price - head.cost).as_dollars();
        let qty = match self.config.quantity {
            // Saving MOA: same number of base units, fewer dollars.
            QuantityModel::Saving => {
                (target.qty as f64 * rec.pack_qty as f64) / head.pack_qty as f64
            }
            // Buying MOA: same spending, more units — except a free
            // promotion, which keeps the saving quantity.
            QuantityModel::Buying => {
                let spending = rec.price.times(target.qty).as_dollars();
                if head.price.is_zero() {
                    (target.qty as f64 * rec.pack_qty as f64) / head.pack_qty as f64
                } else {
                    spending / head.price.as_dollars()
                }
            }
        };
        Some(margin * qty)
    }

    // ------------------------------------------------------------------
    // Lattice + rule enumeration.
    // ------------------------------------------------------------------

    /// Definition 3 generalizations of one sale, in enumeration order:
    /// favorable codes ascending, the item node, sorted concept ancestors.
    fn generalizations_of_sale(&self, s: &Sale) -> Vec<GenSale> {
        let mut out = Vec::new();
        let rec = self.code(s.item, s.code);
        let n_codes = self.catalog.item(s.item).codes.len();
        for c in 0..n_codes {
            let code = CodeId(c as u16);
            let keep = if self.config.moa {
                Self::weakly_favorable(self.code(s.item, code), rec)
            } else {
                code == s.code
            };
            if keep {
                out.push(GenSale::ItemCode(s.item, code));
            }
        }
        out.push(GenSale::Item(s.item));
        for c in self.item_ancestors(s.item) {
            out.push(GenSale::Concept(c));
        }
        out
    }

    /// Materialize the occurring `MOA(H)` nodes in first-occurrence order
    /// (transactions in order, sales in stored order, Definition 3 order
    /// within a sale) — the same order the optimized interner assigns ids.
    fn collect_nodes(&mut self) {
        let txns = std::mem::take(&mut self.txns);
        for t in &txns {
            for s in t.non_target_sales() {
                for g in self.generalizations_of_sale(s) {
                    if !self.nodes.contains(&g) {
                        self.nodes.push(g);
                    }
                }
            }
        }
        self.txns = txns;
    }

    /// Every `(target item, code)` pair in catalog order.
    fn collect_heads(&mut self) {
        for (item, def) in self.catalog.clone().iter() {
            if def.is_target {
                for c in 0..def.codes.len() {
                    self.heads.push((item, CodeId(c as u16)));
                }
            }
        }
    }

    /// Brute-force body enumeration: all singletons ascending, then for
    /// each anchor an ascending depth-first pre-order over larger node ids
    /// — the lexicographic order over sorted id vectors, which the
    /// optimized miner's frequent-set DFS restricts to. No pruning beyond
    /// the structural Definition 4 constraint and the length cap.
    fn enumerate_rules(&mut self) {
        let m = self.nodes.len();
        let mut rules = Vec::new();
        for i in 0..m {
            self.eval_body(&[i], &mut rules);
        }
        if self.config.max_body_len > 1 {
            let mut body = Vec::new();
            for anchor in 0..m {
                body.clear();
                body.push(anchor);
                self.extend_body(&mut body, anchor + 1, &mut rules);
            }
        }
        self.all_rules = rules;
    }

    fn extend_body(&self, body: &mut Vec<usize>, start: usize, rules: &mut Vec<OracleRule>) {
        if body.len() == self.config.max_body_len {
            return;
        }
        for c in start..self.nodes.len() {
            if body
                .iter()
                .any(|&b| self.related(self.nodes[b], self.nodes[c]))
            {
                continue;
            }
            body.push(c);
            self.eval_body(body, rules);
            self.extend_body(body, c + 1, rules);
            body.pop();
        }
    }

    /// Rescan every transaction for this body, then emit one rule per
    /// head with ≥ 1 hit (heads ascending; profits summed in transaction
    /// order, matching the optimized emitter's accumulation order).
    fn eval_body(&self, body_ids: &[usize], rules: &mut Vec<OracleRule>) {
        let body: Vec<GenSale> = body_ids.iter().map(|&i| self.nodes[i]).collect();
        let matched: Vec<usize> = (0..self.txns.len())
            .filter(|&tid| self.body_matches(&body, self.txns[tid].non_target_sales()))
            .collect();
        if matched.is_empty() {
            return;
        }
        for &(item, code) in &self.heads {
            let mut hits = 0u32;
            let mut profit = 0.0f64;
            for &tid in &matched {
                if let Some(p) = self.head_profit(item, code, self.txns[tid].target_sale()) {
                    hits += 1;
                    profit += p;
                }
            }
            if hits > 0 {
                rules.push(OracleRule {
                    body: body.clone(),
                    item,
                    code,
                    body_count: matched.len() as u32,
                    hits,
                    profit,
                    gen_index: rules.len() as u32,
                });
            }
        }
    }

    /// Per-head `(hits, total profit)` over all transactions, profits
    /// summed in transaction order.
    fn compute_head_totals(&self) -> Vec<(u32, f64)> {
        let mut totals = vec![(0u32, 0.0f64); self.heads.len()];
        for t in &self.txns {
            for (h, &(item, code)) in self.heads.iter().enumerate() {
                if let Some(p) = self.head_profit(item, code, t.target_sale()) {
                    totals[h].0 += 1;
                    totals[h].1 += p;
                }
            }
        }
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_txn::{ItemDef, Money};

    const FC: ItemId = ItemId(0);
    const SODA: ItemId = ItemId(1);
    const SUNCHIP: ItemId = ItemId(2);

    /// Paper-flavoured fixture: two non-target items (FC with 3 codes,
    /// Soda with 1), one target (Sunchip, 2 codes, $2 cost), and a small
    /// Chicken → Meat concept chain over FC.
    fn dataset() -> TransactionSet {
        let mut cat = Catalog::new();
        cat.push(ItemDef {
            name: "FC".into(),
            codes: [300i64, 350, 380]
                .iter()
                .map(|&p| PromotionCode::unit(Money::from_cents(p), Money::from_cents(100)))
                .collect(),
            is_target: false,
        });
        cat.push(ItemDef {
            name: "Soda".into(),
            codes: vec![PromotionCode::unit(
                Money::from_cents(150),
                Money::from_cents(50),
            )],
            is_target: false,
        });
        cat.push(ItemDef {
            name: "Sunchip".into(),
            codes: [380i64, 500]
                .iter()
                .map(|&p| PromotionCode::unit(Money::from_cents(p), Money::from_cents(200)))
                .collect(),
            is_target: true,
        });
        let mut h = Hierarchy::flat(3);
        let meat = h.add_concept("Meat");
        let chicken = h.add_concept("Chicken");
        h.link_concept(chicken, meat).unwrap();
        h.link_item(FC, chicken).unwrap();
        let txns = vec![
            Transaction::new(
                vec![Sale::new(FC, CodeId(2), 1)],
                Sale::new(SUNCHIP, CodeId(1), 2),
            ),
            Transaction::new(
                vec![Sale::new(FC, CodeId(0), 1), Sale::new(SODA, CodeId(0), 1)],
                Sale::new(SUNCHIP, CodeId(0), 1),
            ),
            Transaction::new(
                vec![Sale::new(SODA, CodeId(0), 2)],
                Sale::new(SUNCHIP, CodeId(1), 1),
            ),
        ];
        TransactionSet::new(cat, h, txns).unwrap()
    }

    fn oracle(minsup: u32, moa: bool) -> Oracle {
        Oracle::build(
            &dataset(),
            OracleConfig {
                moa,
                ..OracleConfig::new(minsup, 2)
            },
        )
    }

    #[test]
    fn node_universe_first_occurrence_order() {
        let o = oracle(1, true);
        // Txn 0: FC@$3.8 ⇒ ⟨FC,$3⟩ ⟨FC,$3.5⟩ ⟨FC,$3.8⟩ FC Meat Chicken
        // (concepts sorted ascending: Meat=0, Chicken=1).
        assert_eq!(
            &o.nodes()[..6],
            &[
                GenSale::ItemCode(FC, CodeId(0)),
                GenSale::ItemCode(FC, CodeId(1)),
                GenSale::ItemCode(FC, CodeId(2)),
                GenSale::Item(FC),
                GenSale::Concept(ConceptId(0)),
                GenSale::Concept(ConceptId(1)),
            ]
        );
        // Txn 1 adds only Soda nodes.
        assert_eq!(
            &o.nodes()[6..],
            &[GenSale::ItemCode(SODA, CodeId(0)), GenSale::Item(SODA),]
        );
    }

    #[test]
    fn without_moa_only_exact_codes() {
        let o = oracle(1, false);
        // Txn 0's FC@$3.8 now yields a single item/code node.
        assert_eq!(o.nodes()[0], GenSale::ItemCode(FC, CodeId(2)));
        assert!(!o.nodes().contains(&GenSale::ItemCode(FC, CodeId(1))));
    }

    #[test]
    fn heads_in_catalog_order() {
        let o = oracle(1, true);
        assert_eq!(o.heads(), &[(SUNCHIP, CodeId(0)), (SUNCHIP, CodeId(1))]);
    }

    #[test]
    fn singleton_rule_stats_by_hand() {
        let o = oracle(1, true);
        // Body {⟨FC,$3⟩} matches txns 0 and 1 (favorable to both recorded
        // FC codes). Head ⟨Sunchip,$3.8⟩ generalizes both targets:
        // txn 0: qty 2 × margin $1.8 = 3.6; txn 1: qty 1 × 1.8 = 1.8.
        let r = o
            .frequent_rules()
            .iter()
            .find(|r| r.body == vec![GenSale::ItemCode(FC, CodeId(0))] && r.code == CodeId(0))
            .expect("rule exists");
        assert_eq!(r.body_count, 2);
        assert_eq!(r.hits, 2);
        assert!((r.profit - (3.6 + 1.8)).abs() < 1e-12);
        assert!((r.confidence() - 1.0).abs() < 1e-12);
        assert!((r.recommendation_profit(OracleProfitMode::Profit) - 2.7).abs() < 1e-12);
        // Head ⟨Sunchip,$5⟩ only generalizes txn 0's recorded $5 sale.
        let r5 = o
            .frequent_rules()
            .iter()
            .find(|r| r.body == vec![GenSale::ItemCode(FC, CodeId(0))] && r.code == CodeId(1))
            .expect("rule exists");
        assert_eq!((r5.body_count, r5.hits), (2, 1));
        assert!((r5.profit - 6.0).abs() < 1e-12); // qty 2 × margin $3
    }

    #[test]
    fn minsup_filters_and_renumbers() {
        let all = oracle(1, true);
        let filtered = oracle(2, true);
        assert!(filtered.frequent_rules().len() < all.frequent_rules().len());
        assert!(filtered.frequent_rules().iter().all(|r| r.hits >= 2));
        for (i, r) in filtered.frequent_rules().iter().enumerate() {
            assert_eq!(r.gen_index, i as u32);
        }
        // The filtered set preserves the relative generation order of the
        // unfiltered one.
        let keys = |rules: &[OracleRule]| -> Vec<(Vec<GenSale>, ItemId, CodeId)> {
            rules
                .iter()
                .map(|r| (r.body.clone(), r.item, r.code))
                .collect()
        };
        let all_keys = keys(all.frequent_rules());
        let sub_keys = keys(filtered.frequent_rules());
        let mut pos = 0;
        for k in &sub_keys {
            let at = all_keys[pos..].iter().position(|x| x == k);
            assert!(at.is_some(), "filtered rules appear in order");
            pos += at.unwrap() + 1;
        }
    }

    #[test]
    fn bodies_never_contain_related_pairs() {
        let o = oracle(1, true);
        for r in o.all_rules() {
            for (i, &a) in r.body.iter().enumerate() {
                for &b in &r.body[i + 1..] {
                    assert!(!o.related(a, b), "{a} vs {b} in a body");
                }
            }
        }
        // Sanity: the universe does contain related pairs that the
        // enumeration had to skip.
        assert!(o.related(
            GenSale::ItemCode(FC, CodeId(0)),
            GenSale::ItemCode(FC, CodeId(2))
        ));
        assert!(o.related(GenSale::Concept(ConceptId(0)), GenSale::Item(FC)));
    }

    #[test]
    fn default_rule_maximizes_and_ties_late() {
        let o = oracle(1, true);
        let d = o.default_rule(OracleProfitMode::Profit);
        assert!(d.body.is_empty());
        assert_eq!(d.body_count, 3);
        assert_eq!(d.gen_index, u32::MAX);
        // Head $3.8 generalizes every recorded target sale: profits
        // 2×1.8 + 1.8 + 1.8 = 7.2; head $5 only txns 0 and 2:
        // 2×3 + 1×3 = 9.0 ⇒ head $5 wins on profit.
        assert_eq!(d.code, CodeId(1));
        assert!((d.profit - 9.0).abs() < 1e-12);
        assert_eq!(d.hits, 2);
        // Confidence mode scores by hits: head $3.8 wins 3 vs 2.
        let d = o.default_rule(OracleProfitMode::Confidence);
        assert_eq!(d.code, CodeId(0));
        assert_eq!(d.hits, 3);
    }

    #[test]
    fn ranked_list_is_descending_and_total() {
        for mode in [OracleProfitMode::Profit, OracleProfitMode::Confidence] {
            let o = oracle(1, true);
            let ranked = o.ranked_rules(mode);
            assert_eq!(ranked.len(), o.frequent_rules().len() + 1);
            for w in ranked.windows(2) {
                assert_ne!(mpf_cmp(&w[0], &w[1], mode), Ordering::Less);
            }
        }
    }

    #[test]
    fn recommendation_falls_back_to_default() {
        let o = oracle(1, true);
        // A customer who bought nothing the rules know about.
        let stranger = [];
        let r = o.recommend(&stranger, OracleProfitMode::Profit);
        assert!(r.body.is_empty());
        assert_eq!(r.gen_index, u32::MAX);
        // A customer with FC at the cheapest code matches FC-bodied rules.
        let fc_buyer = [Sale::new(FC, CodeId(0), 1)];
        let r = o.recommend(&fc_buyer, OracleProfitMode::Profit);
        assert!(o.body_matches(&r.body, &fc_buyer));
    }

    #[test]
    fn targeted_ranking_equals_post_filtering() {
        let full = oracle(1, true);
        let targeted = Oracle::build(
            &dataset(),
            OracleConfig {
                target: Some(TargetFilter::Codes(vec![CodeId(0)])),
                ..OracleConfig::new(1, 2)
            },
        );
        // The targeted frequent set is the post-filtered full one, gen
        // indices renumbered.
        let expect: Vec<OracleRule> = full
            .frequent_rules()
            .iter()
            .filter(|r| r.code == CodeId(0))
            .cloned()
            .enumerate()
            .map(|(i, mut r)| {
                r.gen_index = i as u32;
                r
            })
            .collect();
        assert!(!expect.is_empty());
        assert_eq!(targeted.frequent_rules(), expect.as_slice());
        // The default rule restricts its arg-max: code 1 wins the full
        // profit arg-max, code 0 must win the targeted one.
        assert_eq!(full.default_rule(OracleProfitMode::Profit).code, CodeId(1));
        let d = targeted.default_rule(OracleProfitMode::Profit);
        assert_eq!(d.code, CodeId(0));
        assert_eq!(d.gen_index, u32::MAX);
        // An impossible target falls back to the unrestricted arg-max.
        let impossible = Oracle::build(
            &dataset(),
            OracleConfig {
                target: Some(TargetFilter::Items(vec![ItemId(99)])),
                ..OracleConfig::new(1, 2)
            },
        );
        assert!(impossible.frequent_rules().is_empty());
        assert_eq!(
            impossible.default_rule(OracleProfitMode::Profit).code,
            CodeId(1)
        );
    }

    #[test]
    fn subtree_target_follows_hierarchy() {
        // The fixture's targets have no concept ancestors, so a subtree
        // target admits nothing and everything falls back to the default.
        let o = Oracle::build(
            &dataset(),
            OracleConfig {
                target: Some(TargetFilter::Subtree(ConceptId(0))),
                ..OracleConfig::new(1, 2)
            },
        );
        assert!(o.frequent_rules().is_empty());
        let ranked = o.ranked_rules(OracleProfitMode::Profit);
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].gen_index, u32::MAX);
    }

    #[test]
    fn per_item_floors_filter_like_the_scalar_floor() {
        // A scalar floor of 5.0 keeps only rules with Prof_ru ≥ 5.
        let scalar = Oracle::build(
            &dataset(),
            OracleConfig {
                min_rule_profit: Some(5.0),
                ..OracleConfig::new(1, 2)
            },
        );
        assert!(!scalar.frequent_rules().is_empty());
        assert!(scalar.frequent_rules().iter().all(|r| r.profit >= 5.0));
        // A per-item entry for Sunchip overrides the scalar floor.
        let per_item = Oracle::build(
            &dataset(),
            OracleConfig {
                min_rule_profit: Some(1e18),
                min_profit_per_item: vec![(SUNCHIP, 5.0)],
                ..OracleConfig::new(1, 2)
            },
        );
        assert_eq!(per_item.frequent_rules(), scalar.frequent_rules());
        // A per-item floor alone behaves the same on that item.
        let alone = Oracle::build(
            &dataset(),
            OracleConfig {
                min_profit_per_item: vec![(SUNCHIP, 5.0)],
                ..OracleConfig::new(1, 2)
            },
        );
        assert_eq!(alone.frequent_rules(), scalar.frequent_rules());
    }

    #[test]
    fn assortment_exhausts_small_instances() {
        let o = oracle(1, true);
        // With every candidate admitted, the score is the sum of each
        // customer's top-1 recommendation profit.
        let ranked = o.ranked_rules(OracleProfitMode::Profit);
        let n_pairs = {
            let mut pairs: Vec<(ItemId, CodeId)> = Vec::new();
            for r in &ranked {
                if !pairs.contains(&(r.item, r.code)) {
                    pairs.push((r.item, r.code));
                }
            }
            pairs.len()
        };
        let (full_set, full_score) = o.assortment(n_pairs, OracleProfitMode::Profit);
        assert_eq!(full_set.len(), n_pairs);
        let expect: f64 = (0..o.n_transactions())
            .map(|tid| {
                let t = &o.txns[tid];
                o.recommend(t.non_target_sales(), OracleProfitMode::Profit)
                    .recommendation_profit(OracleProfitMode::Profit)
            })
            .sum();
        assert!((full_score - expect).abs() < 1e-12);
        // n = 1 picks the single best pair; its score can only drop.
        let (one, one_score) = o.assortment(1, OracleProfitMode::Profit);
        assert_eq!(one.len(), 1);
        assert!(one_score <= full_score + 1e-12);
        // Oversized n clamps to the candidate count.
        let (clamped, clamped_score) = o.assortment(100, OracleProfitMode::Profit);
        assert_eq!(clamped.len(), n_pairs);
        assert_eq!(clamped_score.to_bits(), full_score.to_bits());
    }

    #[test]
    fn buying_moa_credits_spending_over_price() {
        let o = Oracle::build(
            &dataset(),
            OracleConfig {
                quantity: QuantityModel::Buying,
                ..OracleConfig::new(1, 1)
            },
        );
        // Txn 0 recorded 2 × $5; head $3.8 ⇒ qty 10/3.8, margin 1.8.
        let r = o
            .frequent_rules()
            .iter()
            .find(|r| r.body == vec![GenSale::Item(FC)] && r.code == CodeId(0))
            .expect("rule exists");
        // Txn 0: 1.8 × (10/3.8); txn 1: recorded $3.8 ⇒ qty 3.8/3.8 = 1.
        let expect = 1.8 * (10.0 / 3.8) + 1.8 * 1.0;
        assert!((r.profit - expect).abs() < 1e-12);
    }
}
