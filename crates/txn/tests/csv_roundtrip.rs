//! Property test: a generated dataset survives the CSV export/import
//! round trip intact — `to_csv` → `parse_catalog`/`parse_sales` rebuilds
//! the same catalog, the same transactions in the same order, and the
//! same recorded profit. The CSV form carries prices as `{:.2}` dollars,
//! which is lossless because all generated prices are cent-aligned.

use pm_datagen::DatasetConfig;
use pm_txn::csv::{parse_catalog, parse_sales, to_csv};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn generated_dataset_round_trips_through_csv(
        seed in 0u64..1_000_000,
        n_txns in 5usize..40,
        n_items in 3usize..10,
        n_prices in 2usize..5,
    ) {
        // Flat datasets only: the CSV pair has no hierarchy column.
        let cfg = DatasetConfig::tiny(n_txns, n_items, n_prices);
        let data = cfg.generate(&mut StdRng::seed_from_u64(seed));

        let (cat_csv, sales_csv) = to_csv(&data);
        let (catalog2, names) = parse_catalog(&cat_csv)
            .expect("exported catalog must re-parse");
        let data2 = parse_sales(&sales_csv, catalog2, &names)
            .expect("exported sales must re-parse");

        // Catalog: same items, roles, codes, prices (Debug form is a
        // complete rendering; Catalog has no PartialEq).
        prop_assert_eq!(
            format!("{:?}", data2.catalog()),
            format!("{:?}", data.catalog())
        );
        // Transactions: identical sales in identical order.
        prop_assert_eq!(data2.transactions(), data.transactions());
        // And therefore identical money totals.
        prop_assert_eq!(
            data2.total_recorded_profit(),
            data.total_recorded_profit()
        );
    }
}

/// The exported CSVs are well-formed text files: exactly one header each
/// and a trailing newline (tooling like `wc -l`/`tail` depends on it).
#[test]
fn exported_csvs_end_with_newline() {
    let data = DatasetConfig::tiny(10, 4, 2).generate(&mut StdRng::seed_from_u64(3));
    let (cat_csv, sales_csv) = to_csv(&data);
    assert!(cat_csv.starts_with("item,role,price,cost,pack\n"));
    assert!(sales_csv.starts_with("txn,item,code,qty\n"));
    assert!(cat_csv.ends_with('\n') && !cat_csv.ends_with("\n\n"));
    assert!(sales_csv.ends_with('\n') && !sales_csv.ends_with("\n\n"));
}
