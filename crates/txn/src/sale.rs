//! Sales and transactions (§2, Definition 1).

use crate::catalog::Catalog;
use crate::ids::{CodeId, ItemId};
use crate::money::Money;
use serde::{Deserialize, Serialize};

/// A sale `<I, P, Q>`: quantity `Q` (in *packages*) of item `I` under
/// promotion code `P`. The price, cost and quantity of a sale all refer to
/// the same packing (paper Example 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Sale {
    /// The item sold.
    pub item: ItemId,
    /// The promotion code it was sold under.
    pub code: CodeId,
    /// Number of packages sold (≥ 1 in valid data).
    pub qty: u32,
}

impl Sale {
    /// Construct a sale.
    pub fn new(item: ItemId, code: CodeId, qty: u32) -> Self {
        Self { item, code, qty }
    }

    /// The recorded profit of this sale: `(Price(P) − Cost(P)) × Q`.
    pub fn profit(&self, catalog: &Catalog) -> Money {
        catalog.code(self.item, self.code).margin().times(self.qty)
    }

    /// The recorded spending of this sale: `Price(P) × Q`.
    pub fn spending(&self, catalog: &Catalog) -> Money {
        catalog.code(self.item, self.code).price.times(self.qty)
    }
}

/// The target sale of a transaction — structurally identical to [`Sale`],
/// kept as an alias for readability at call sites.
pub type TargetSale = Sale;

/// A transaction `{s₁, …, s_k, s}`: several non-target sales plus exactly
/// one target sale.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    non_target: Vec<Sale>,
    target: TargetSale,
}

impl Transaction {
    /// Build a transaction. Non-target sales are sorted by item id so that
    /// structurally equal transactions compare equal.
    pub fn new(mut non_target: Vec<Sale>, target: TargetSale) -> Self {
        non_target.sort_by_key(|s| (s.item, s.code));
        Self { non_target, target }
    }

    /// The non-target sales (sorted by item id).
    pub fn non_target_sales(&self) -> &[Sale] {
        &self.non_target
    }

    /// The target sale.
    pub fn target_sale(&self) -> &TargetSale {
        &self.target
    }

    /// The recorded profit of the *target* sale — the denominator of the
    /// paper's gain measure (§5.1).
    pub fn recorded_target_profit(&self, catalog: &Catalog) -> Money {
        self.target.profit(catalog)
    }

    /// Number of non-target sales.
    pub fn basket_size(&self) -> usize {
        self.non_target.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ItemDef;
    use crate::code::PromotionCode;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        for (name, price, cost, target) in [
            ("egg", 100i64, 50i64, true),
            ("bread", 250, 100, false),
            ("jam", 400, 150, false),
        ] {
            c.push(ItemDef {
                name: name.into(),
                codes: vec![PromotionCode::unit(
                    Money::from_cents(price),
                    Money::from_cents(cost),
                )],
                is_target: target,
            });
        }
        c
    }

    #[test]
    fn sale_profit_and_spending() {
        let c = catalog();
        let s = Sale::new(ItemId(0), CodeId(0), 3);
        assert_eq!(s.profit(&c), Money::from_cents(150));
        assert_eq!(s.spending(&c), Money::from_cents(300));
    }

    #[test]
    fn transaction_accessors() {
        let c = catalog();
        let t = Transaction::new(
            vec![
                Sale::new(ItemId(2), CodeId(0), 1),
                Sale::new(ItemId(1), CodeId(0), 2),
            ],
            Sale::new(ItemId(0), CodeId(0), 4),
        );
        // Sorted by item id.
        assert_eq!(t.non_target_sales()[0].item, ItemId(1));
        assert_eq!(t.basket_size(), 2);
        assert_eq!(t.recorded_target_profit(&c), Money::from_cents(200));
    }

    #[test]
    fn structural_equality_ignores_input_order() {
        let a = Transaction::new(
            vec![
                Sale::new(ItemId(1), CodeId(0), 1),
                Sale::new(ItemId(2), CodeId(0), 1),
            ],
            Sale::new(ItemId(0), CodeId(0), 1),
        );
        let b = Transaction::new(
            vec![
                Sale::new(ItemId(2), CodeId(0), 1),
                Sale::new(ItemId(1), CodeId(0), 1),
            ],
            Sale::new(ItemId(0), CodeId(0), 1),
        );
        assert_eq!(a, b);
    }
}
