//! The dataset container: a catalog, a hierarchy, and transactions —
//! everything a mining run consumes, with validation and (de)serialization.

use crate::catalog::Catalog;
use crate::error::TxnError;
use crate::growth::CatalogDelta;
use crate::hierarchy::Hierarchy;
use crate::money::Money;
use crate::sale::Transaction;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A validated collection of past transactions over a catalog and a
/// concept hierarchy (the input of Definition 1).
///
/// The catalog and hierarchy are held through [`Arc`]s so that folds,
/// subsets and trained recommenders share them without copying.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransactionSet {
    catalog: Arc<Catalog>,
    hierarchy: Arc<Hierarchy>,
    transactions: Vec<Transaction>,
}

impl TransactionSet {
    /// Assemble and validate a dataset.
    ///
    /// Validation enforces:
    /// * catalog consistency (every item has codes; ≥ 1 target item);
    /// * hierarchy consistency (item counts agree; acyclic);
    /// * every sale references a known item/code with positive quantity;
    /// * target sales use target items, non-target sales non-target items.
    pub fn new(
        catalog: Catalog,
        hierarchy: Hierarchy,
        transactions: Vec<Transaction>,
    ) -> Result<Self, TxnError> {
        catalog.validate()?;
        hierarchy.validate()?;
        if hierarchy.n_items() != catalog.len() {
            return Err(TxnError::ItemCountMismatch {
                catalog: catalog.len(),
                hierarchy: hierarchy.n_items(),
            });
        }
        for t in &transactions {
            validate_transaction(&catalog, t)?;
        }
        Ok(Self {
            catalog: Arc::new(catalog),
            hierarchy: Arc::new(hierarchy),
            transactions,
        })
    }

    /// Shared handle to the catalog.
    pub fn catalog_arc(&self) -> Arc<Catalog> {
        Arc::clone(&self.catalog)
    }

    /// Shared handle to the hierarchy.
    pub fn hierarchy_arc(&self) -> Arc<Hierarchy> {
        Arc::clone(&self.hierarchy)
    }

    /// The item catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The concept hierarchy.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// All transactions.
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// True when there are no transactions.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Total recorded profit of all target sales — the gain denominator
    /// over the whole set.
    pub fn total_recorded_profit(&self) -> Money {
        self.transactions
            .iter()
            .map(|t| t.recorded_target_profit(&self.catalog))
            .sum()
    }

    /// Append a delta batch of transactions — the streaming-ingestion
    /// path. Each transaction is validated against this set's catalog
    /// with exactly the checks [`Self::new`] runs; on any error nothing
    /// is appended (validation happens before the first push).
    ///
    /// Returns the number of transactions appended. The catalog and
    /// hierarchy are fixed at fit time: a delta can only add sales over
    /// the existing items and codes, which is what keeps the head
    /// universe — and with it the incremental miner's byte-identity —
    /// stable across updates.
    pub fn extend_from(&mut self, delta: &[Transaction]) -> Result<usize, TxnError> {
        self.validate_delta(delta)?;
        self.transactions.extend_from_slice(delta);
        Ok(delta.len())
    }

    /// Run exactly the per-transaction checks [`Self::extend_from`]
    /// runs, without appending anything. Lets an ingestion path make a
    /// batch durable (e.g. append it to a write-ahead sales log) only
    /// after it is known to be appendable, so the log never holds a
    /// record that a later replay would reject.
    pub fn validate_delta(&self, delta: &[Transaction]) -> Result<(), TxnError> {
        for t in delta {
            validate_transaction(&self.catalog, t)?;
        }
        Ok(())
    }

    /// Apply an append-only catalog-growth delta: new items, codes and
    /// concepts land at the end of their tables; nothing existing moves
    /// or changes (see [`crate::growth`] for why that discipline keeps
    /// incremental mining byte-exact). On any error the set is
    /// untouched. Returns the number of items added.
    ///
    /// The catalog and hierarchy [`Arc`]s are *replaced*, not mutated —
    /// models and Moa views already holding the old handles keep seeing
    /// the pre-growth tables.
    pub fn extend_catalog(&mut self, delta: &CatalogDelta) -> Result<usize, TxnError> {
        if delta.is_empty() {
            return Ok(0);
        }
        let (catalog, hierarchy) = delta.grown(&self.catalog, &self.hierarchy)?;
        self.catalog = Arc::new(catalog);
        self.hierarchy = Arc::new(hierarchy);
        Ok(delta.items.len())
    }

    /// Validate a full stream record — an optional growth delta plus a
    /// transaction batch checked against the *grown* catalog — without
    /// applying anything. The growth-aware extension of
    /// [`Self::validate_delta`]: an ingestion path calls this before
    /// making the record durable, so the write-ahead log never holds a
    /// record a later replay would reject.
    pub fn validate_stream_record(
        &self,
        delta: Option<&CatalogDelta>,
        txns: &[Transaction],
    ) -> Result<(), TxnError> {
        match delta {
            None => self.validate_delta(txns),
            Some(d) => {
                let (catalog, _) = d.grown(&self.catalog, &self.hierarchy)?;
                for t in txns {
                    validate_transaction(&catalog, t)?;
                }
                Ok(())
            }
        }
    }

    /// Apply a full stream record: grow the catalog (if the record
    /// carries a delta), then append the batch. The replay counterpart
    /// of [`Self::validate_stream_record`].
    pub fn apply_stream_record(
        &mut self,
        delta: Option<&CatalogDelta>,
        txns: &[Transaction],
    ) -> Result<usize, TxnError> {
        if let Some(d) = delta {
            self.extend_catalog(d)?;
        }
        self.extend_from(txns)
    }

    /// A new set sharing this catalog/hierarchy but containing only the
    /// transactions at `indices` (used by cross-validation folds).
    ///
    /// # Panics
    ///
    /// Panics when an index is out of range.
    pub fn subset(&self, indices: &[usize]) -> TransactionSet {
        TransactionSet {
            catalog: Arc::clone(&self.catalog),
            hierarchy: Arc::clone(&self.hierarchy),
            transactions: indices
                .iter()
                .map(|&i| self.transactions[i].clone())
                .collect(),
        }
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("dataset serializes")
    }

    /// Deserialize from JSON produced by [`Self::to_json`], re-validating.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let raw: TransactionSet = serde_json::from_str(s).map_err(|e| e.to_string())?;
        TransactionSet::new(
            Arc::try_unwrap(raw.catalog).unwrap_or_else(|a| (*a).clone()),
            Arc::try_unwrap(raw.hierarchy).unwrap_or_else(|a| (*a).clone()),
            raw.transactions,
        )
        .map_err(|e| e.to_string())
    }
}

/// The per-transaction validity checks shared by [`TransactionSet::new`]
/// and [`TransactionSet::extend_from`]: known items and codes, positive
/// quantities, target sales on target items only (and vice versa).
fn validate_transaction(catalog: &Catalog, t: &Transaction) -> Result<(), TxnError> {
    let target = t.target_sale();
    let def = catalog
        .get(target.item)
        .ok_or(TxnError::UnknownItem(target.item))?;
    if !def.is_target {
        return Err(TxnError::TargetSaleOnNonTarget(target.item));
    }
    catalog.try_code(target.item, target.code)?;
    if target.qty == 0 {
        return Err(TxnError::ZeroQuantity(target.item));
    }
    for s in t.non_target_sales() {
        let def = catalog.get(s.item).ok_or(TxnError::UnknownItem(s.item))?;
        if def.is_target {
            return Err(TxnError::NonTargetSaleOnTarget(s.item));
        }
        catalog.try_code(s.item, s.code)?;
        if s.qty == 0 {
            return Err(TxnError::ZeroQuantity(s.item));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ItemDef;
    use crate::code::PromotionCode;
    use crate::ids::{CodeId, ItemId};
    use crate::sale::Sale;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.push(ItemDef {
            name: "target".into(),
            codes: vec![PromotionCode::unit(
                Money::from_cents(100),
                Money::from_cents(40),
            )],
            is_target: true,
        });
        c.push(ItemDef {
            name: "trigger".into(),
            codes: vec![PromotionCode::unit(
                Money::from_cents(50),
                Money::from_cents(20),
            )],
            is_target: false,
        });
        c
    }

    fn txn(qty: u32) -> Transaction {
        Transaction::new(
            vec![Sale::new(ItemId(1), CodeId(0), 1)],
            Sale::new(ItemId(0), CodeId(0), qty),
        )
    }

    #[test]
    fn valid_roundtrip() {
        let ds = TransactionSet::new(catalog(), Hierarchy::flat(2), vec![txn(1), txn(2)]).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.total_recorded_profit(), Money::from_cents(180));
        let json = ds.to_json();
        let back = TransactionSet::from_json(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.total_recorded_profit(), Money::from_cents(180));
    }

    #[test]
    fn subset_selects() {
        let ds = TransactionSet::new(catalog(), Hierarchy::flat(2), vec![txn(1), txn(2), txn(3)])
            .unwrap();
        let sub = ds.subset(&[2, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.transactions()[0].target_sale().qty, 3);
    }

    #[test]
    fn extend_from_appends_validated_deltas() {
        let mut ds = TransactionSet::new(catalog(), Hierarchy::flat(2), vec![txn(1)]).unwrap();
        assert_eq!(ds.extend_from(&[txn(2), txn(3)]).unwrap(), 2);
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.transactions()[2].target_sale().qty, 3);
        // The catalog/hierarchy handles are unchanged (shared, not
        // cloned) — downstream Moa views stay valid.
        assert_eq!(ds.total_recorded_profit(), Money::from_cents(360));
    }

    #[test]
    fn extend_from_rejects_invalid_deltas_atomically() {
        let mut ds = TransactionSet::new(catalog(), Hierarchy::flat(2), vec![txn(1)]).unwrap();
        // One good transaction followed by one bad one: nothing lands.
        let bad = Transaction::new(vec![], Sale::new(ItemId(9), CodeId(0), 1));
        assert_eq!(
            ds.extend_from(&[txn(2), bad]).unwrap_err(),
            TxnError::UnknownItem(ItemId(9))
        );
        assert_eq!(ds.len(), 1, "failed delta must not partially append");
        // Every validation class fires on the delta path too.
        let bad = Transaction::new(vec![], Sale::new(ItemId(1), CodeId(0), 1));
        assert_eq!(
            ds.extend_from(&[bad]).unwrap_err(),
            TxnError::TargetSaleOnNonTarget(ItemId(1))
        );
        assert_eq!(
            ds.extend_from(&[txn(0)]).unwrap_err(),
            TxnError::ZeroQuantity(ItemId(0))
        );
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn rejects_target_mixups() {
        // Target sale on a non-target item.
        let bad = Transaction::new(vec![], Sale::new(ItemId(1), CodeId(0), 1));
        assert_eq!(
            TransactionSet::new(catalog(), Hierarchy::flat(2), vec![bad]).unwrap_err(),
            TxnError::TargetSaleOnNonTarget(ItemId(1))
        );
        // Non-target sale on a target item.
        let bad = Transaction::new(
            vec![Sale::new(ItemId(0), CodeId(0), 1)],
            Sale::new(ItemId(0), CodeId(0), 1),
        );
        assert_eq!(
            TransactionSet::new(catalog(), Hierarchy::flat(2), vec![bad]).unwrap_err(),
            TxnError::NonTargetSaleOnTarget(ItemId(0))
        );
    }

    #[test]
    fn rejects_bad_references() {
        let bad = Transaction::new(vec![], Sale::new(ItemId(9), CodeId(0), 1));
        assert_eq!(
            TransactionSet::new(catalog(), Hierarchy::flat(2), vec![bad]).unwrap_err(),
            TxnError::UnknownItem(ItemId(9))
        );
        let bad = Transaction::new(vec![], Sale::new(ItemId(0), CodeId(3), 1));
        assert_eq!(
            TransactionSet::new(catalog(), Hierarchy::flat(2), vec![bad]).unwrap_err(),
            TxnError::UnknownCode(ItemId(0), CodeId(3))
        );
        assert_eq!(
            TransactionSet::new(catalog(), Hierarchy::flat(2), vec![txn(0)]).unwrap_err(),
            TxnError::ZeroQuantity(ItemId(0))
        );
    }

    #[test]
    fn rejects_item_count_mismatch() {
        assert!(matches!(
            TransactionSet::new(catalog(), Hierarchy::flat(5), vec![]),
            Err(TxnError::ItemCountMismatch { .. })
        ));
    }
}
