//! Generalized sales (§2, Definition 3).
//!
//! A generalized sale is one of three node kinds of `MOA(H)`:
//!
//! * a **concept** `C` — matches any sale of an item below `C`;
//! * an **item** `I` — matches any sale of `I`, at any code;
//! * an **item/code pair** `⟨I, P⟩` — matches a sale of `I` under `P` or,
//!   with MOA, under any code `P'` with `P ⪯ P'` (the customer who paid
//!   `P'` would have taken the more favorable `P`).
//!
//! Rule bodies are sets of generalized non-target sales; rule heads are
//! item/code pairs of target items.

use crate::ids::{CodeId, ConceptId, ItemId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One generalized sale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum GenSale {
    /// A concept node of the hierarchy.
    Concept(ConceptId),
    /// An item node (any promotion code).
    Item(ItemId),
    /// An `⟨item, code⟩` node — the only admissible head form.
    ItemCode(ItemId, CodeId),
}

impl GenSale {
    /// The item this node refers to, when it is item-level or finer.
    pub fn item(&self) -> Option<ItemId> {
        match self {
            GenSale::Concept(_) => None,
            GenSale::Item(i) | GenSale::ItemCode(i, _) => Some(*i),
        }
    }

    /// True for `ItemCode` nodes.
    pub fn is_item_code(&self) -> bool {
        matches!(self, GenSale::ItemCode(..))
    }
}

impl fmt::Display for GenSale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenSale::Concept(c) => write!(f, "{c}"),
            GenSale::Item(i) => write!(f, "{i}"),
            GenSale::ItemCode(i, p) => write!(f, "⟨{i},{p}⟩"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_projection() {
        assert_eq!(GenSale::Concept(ConceptId(1)).item(), None);
        assert_eq!(GenSale::Item(ItemId(2)).item(), Some(ItemId(2)));
        assert_eq!(
            GenSale::ItemCode(ItemId(2), CodeId(0)).item(),
            Some(ItemId(2))
        );
    }

    #[test]
    fn ordering_is_total() {
        // The derived order groups kinds; only used for canonical sorting.
        let mut v = [
            GenSale::ItemCode(ItemId(0), CodeId(1)),
            GenSale::Concept(ConceptId(0)),
            GenSale::Item(ItemId(5)),
        ];
        v.sort();
        assert_eq!(v[0], GenSale::Concept(ConceptId(0)));
    }

    #[test]
    fn display() {
        assert_eq!(
            GenSale::ItemCode(ItemId(1), CodeId(2)).to_string(),
            "⟨item#1,code#2⟩"
        );
    }
}
