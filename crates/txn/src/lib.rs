//! Transaction data model for profit mining (§2 of the EDBT 2002 paper).
//!
//! The types here express the paper's problem statement verbatim:
//!
//! * **Items** carry one or more **promotion codes** — a `(price, cost)`
//!   pair for a promotion *packing* (e.g. `$3.2/4-pack` at cost `$2`);
//! * a **sale** `<I, P, Q>` is a quantity `Q` of item `I` sold under
//!   promotion code `P`;
//! * a **transaction** is one *target* sale plus several *non-target*
//!   sales;
//! * a **concept hierarchy** `H` organizes non-target items below
//!   categories (e.g. `Flake_Chicken → Chicken → Meat → Food → ANY`);
//! * **MOA(H)** (*mining on availability*) extends `H` below each item
//!   leaf with the favorability order `≺` on its promotion codes: a
//!   customer willing to buy under `P'` would also buy under any more
//!   favorable `P ≺ P'`;
//! * a **generalized sale** is a concept, an item, or an `(item, code)`
//!   pair; generalized sales *match* concrete sales through `MOA(H)`.
//!
//! Money is fixed-point (`i64` cents) throughout — see [`Money`]; profits
//! become `f64` dollars only at the measure layer, because buying MOA
//! introduces fractional quantities.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod builder;
pub mod catalog;
pub mod code;
pub mod csv;
pub mod dataset;
pub mod error;
pub mod gensale;
pub mod growth;
pub mod hierarchy;
pub mod ids;
pub mod moa;
pub mod money;
pub mod sale;
pub mod target;

pub use builder::CatalogBuilder;
pub use catalog::{Catalog, ItemDef};
pub use code::PromotionCode;
pub use dataset::TransactionSet;
pub use error::TxnError;
pub use gensale::GenSale;
pub use growth::{decode_stream_record, encode_stream_record, CatalogDelta, NewConcept, NewItem};
pub use hierarchy::Hierarchy;
pub use ids::{CodeId, ConceptId, ItemId};
pub use moa::{Moa, QuantityModel};
pub use money::Money;
pub use sale::{Sale, TargetSale, Transaction};
pub use target::{parse_item_floors, TargetFilter};
