//! The concept hierarchy `H` (§2): a rooted DAG whose leaves are items and
//! whose internal nodes are concepts.
//!
//! The root `ANY` is implicit: concepts (and items) with no declared
//! parents hang directly below it. Target items must be immediate children
//! of `ANY` — the paper does not recommend concepts, only concrete items —
//! which the dataset validator enforces.

use crate::error::TxnError;
use crate::ids::{ConceptId, ItemId};
use serde::{Deserialize, Serialize};

/// A concept hierarchy over `n_items` items and any number of concepts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Hierarchy {
    n_items: usize,
    concept_names: Vec<String>,
    /// Direct concept parents of each item.
    item_parents: Vec<Vec<ConceptId>>,
    /// Direct concept parents of each concept.
    concept_parents: Vec<Vec<ConceptId>>,
}

impl Hierarchy {
    /// A flat hierarchy: every item directly below `ANY`, no concepts.
    pub fn flat(n_items: usize) -> Self {
        Self {
            n_items,
            concept_names: Vec::new(),
            item_parents: vec![Vec::new(); n_items],
            concept_parents: Vec::new(),
        }
    }

    /// Number of items the hierarchy covers.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Number of concepts.
    pub fn n_concepts(&self) -> usize {
        self.concept_names.len()
    }

    /// The name of a concept.
    pub fn concept_name(&self, c: ConceptId) -> &str {
        &self.concept_names[c.index()]
    }

    /// Extend coverage by `additional` items, each starting with no
    /// concept parents (directly below `ANY`). The catalog-growth path:
    /// existing items' parents are untouched, so their ancestor sets —
    /// and everything derived from them — are exactly what they were.
    pub fn grow_items(&mut self, additional: usize) {
        self.n_items += additional;
        self.item_parents
            .extend(std::iter::repeat_with(Vec::new).take(additional));
    }

    /// Add a concept, returning its id.
    pub fn add_concept(&mut self, name: impl Into<String>) -> ConceptId {
        let id = ConceptId(self.concept_names.len() as u32);
        self.concept_names.push(name.into());
        self.concept_parents.push(Vec::new());
        id
    }

    /// Declare `concept` a direct parent of `item`.
    pub fn link_item(&mut self, item: ItemId, concept: ConceptId) -> Result<(), TxnError> {
        if item.index() >= self.n_items {
            return Err(TxnError::UnknownItem(item));
        }
        if concept.index() >= self.concept_names.len() {
            return Err(TxnError::UnknownConcept(concept));
        }
        let parents = &mut self.item_parents[item.index()];
        if !parents.contains(&concept) {
            parents.push(concept);
        }
        Ok(())
    }

    /// Declare `parent` a direct parent of `child` (both concepts).
    pub fn link_concept(&mut self, child: ConceptId, parent: ConceptId) -> Result<(), TxnError> {
        for c in [child, parent] {
            if c.index() >= self.concept_names.len() {
                return Err(TxnError::UnknownConcept(c));
            }
        }
        let parents = &mut self.concept_parents[child.index()];
        if !parents.contains(&parent) {
            parents.push(parent);
        }
        Ok(())
    }

    /// Direct concept parents of an item.
    pub fn item_parents(&self, item: ItemId) -> &[ConceptId] {
        &self.item_parents[item.index()]
    }

    /// Direct concept parents of a concept.
    pub fn concept_parents(&self, concept: ConceptId) -> &[ConceptId] {
        &self.concept_parents[concept.index()]
    }

    /// All concept ancestors of `item` (transitive, deduplicated, sorted).
    pub fn item_ancestors(&self, item: ItemId) -> Vec<ConceptId> {
        let mut out = Vec::new();
        let mut seen = vec![false; self.concept_names.len()];
        let mut stack: Vec<ConceptId> = self.item_parents[item.index()].clone();
        while let Some(c) = stack.pop() {
            if !seen[c.index()] {
                seen[c.index()] = true;
                out.push(c);
                stack.extend_from_slice(&self.concept_parents[c.index()]);
            }
        }
        out.sort();
        out
    }

    /// All concept ancestors of `concept` (transitive, *excluding* itself,
    /// deduplicated, sorted).
    pub fn concept_ancestors(&self, concept: ConceptId) -> Vec<ConceptId> {
        let mut out = Vec::new();
        let mut seen = vec![false; self.concept_names.len()];
        let mut stack: Vec<ConceptId> = self.concept_parents[concept.index()].clone();
        while let Some(c) = stack.pop() {
            if !seen[c.index()] {
                seen[c.index()] = true;
                out.push(c);
                stack.extend_from_slice(&self.concept_parents[c.index()]);
            }
        }
        out.sort();
        out
    }

    /// Is `ancestor` a (strict) concept ancestor of `concept`?
    pub fn is_concept_ancestor(&self, ancestor: ConceptId, concept: ConceptId) -> bool {
        self.concept_ancestors(concept)
            .binary_search(&ancestor)
            .is_ok()
    }

    /// Is `concept` a (strict) ancestor of `item`?
    pub fn is_item_ancestor(&self, concept: ConceptId, item: ItemId) -> bool {
        self.item_ancestors(item).binary_search(&concept).is_ok()
    }

    /// Validate: all edges in range (guaranteed by construction) and the
    /// concept graph is acyclic.
    pub fn validate(&self) -> Result<(), TxnError> {
        // Kahn's algorithm over concept → parent edges.
        let n = self.concept_names.len();
        let mut out_degree = vec![0usize; n]; // edges child→parent
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (child, parents) in self.concept_parents.iter().enumerate() {
            out_degree[child] = parents.len();
            for p in parents {
                children[p.index()].push(child);
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| out_degree[i] == 0).collect();
        let mut visited = 0usize;
        while let Some(p) = queue.pop() {
            visited += 1;
            for &c in &children[p] {
                out_degree[c] -= 1;
                if out_degree[c] == 0 {
                    queue.push(c);
                }
            }
        }
        if visited != n {
            let culprit = (0..n)
                .find(|&i| out_degree[i] > 0)
                .expect("some node remains in the cycle");
            return Err(TxnError::HierarchyCycle(ConceptId(culprit as u32)));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 1 hierarchy: Flake_Chicken → Chicken → Meat →
    /// Food → ANY, with Sunchip a target item directly below ANY.
    fn figure1() -> (Hierarchy, ItemId, ItemId, [ConceptId; 3]) {
        let fc = ItemId(0); // Flake_Chicken (non-target)
        let sunchip = ItemId(1); // Sunchip (target)
        let mut h = Hierarchy::flat(2);
        let food = h.add_concept("Food");
        let meat = h.add_concept("Meat");
        let chicken = h.add_concept("Chicken");
        h.link_concept(meat, food).unwrap();
        h.link_concept(chicken, meat).unwrap();
        h.link_item(fc, chicken).unwrap();
        (h, fc, sunchip, [food, meat, chicken])
    }

    #[test]
    fn figure1_ancestors() {
        let (h, fc, sunchip, [food, meat, chicken]) = figure1();
        assert_eq!(h.item_ancestors(fc), vec![food, meat, chicken]);
        assert!(h.item_ancestors(sunchip).is_empty()); // child of ANY only
        assert!(h.is_item_ancestor(food, fc));
        assert!(h.is_concept_ancestor(food, chicken));
        assert!(!h.is_concept_ancestor(chicken, food));
        assert!(!h.is_concept_ancestor(food, food), "strict");
        assert!(h.validate().is_ok());
    }

    #[test]
    fn flat_hierarchy() {
        let h = Hierarchy::flat(5);
        assert_eq!(h.n_items(), 5);
        assert_eq!(h.n_concepts(), 0);
        assert!(h.item_ancestors(ItemId(3)).is_empty());
        assert!(h.validate().is_ok());
    }

    #[test]
    fn dag_with_multiple_parents() {
        // Diamond: item → {a, b} → top.
        let mut h = Hierarchy::flat(1);
        let top = h.add_concept("top");
        let a = h.add_concept("a");
        let b = h.add_concept("b");
        h.link_concept(a, top).unwrap();
        h.link_concept(b, top).unwrap();
        h.link_item(ItemId(0), a).unwrap();
        h.link_item(ItemId(0), b).unwrap();
        let anc = h.item_ancestors(ItemId(0));
        assert_eq!(anc, vec![top, a, b]);
        assert!(h.validate().is_ok());
    }

    #[test]
    fn cycle_detected() {
        let mut h = Hierarchy::flat(0);
        let a = h.add_concept("a");
        let b = h.add_concept("b");
        h.link_concept(a, b).unwrap();
        h.link_concept(b, a).unwrap();
        assert!(matches!(h.validate(), Err(TxnError::HierarchyCycle(_))));
    }

    #[test]
    fn self_loop_detected() {
        let mut h = Hierarchy::flat(0);
        let a = h.add_concept("a");
        h.link_concept(a, a).unwrap();
        assert!(matches!(h.validate(), Err(TxnError::HierarchyCycle(_))));
    }

    #[test]
    fn out_of_range_links_rejected() {
        let mut h = Hierarchy::flat(1);
        let c = h.add_concept("c");
        assert_eq!(
            h.link_item(ItemId(5), c),
            Err(TxnError::UnknownItem(ItemId(5)))
        );
        assert_eq!(
            h.link_concept(c, ConceptId(9)),
            Err(TxnError::UnknownConcept(ConceptId(9)))
        );
    }

    #[test]
    fn duplicate_links_ignored() {
        let (mut h, fc, _, [_, _, chicken]) = figure1();
        h.link_item(fc, chicken).unwrap();
        assert_eq!(h.item_parents(fc).len(), 1);
    }
}
