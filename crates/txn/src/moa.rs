//! The `MOA(H)` generalization structure (§2, Definitions 2–3) and the
//! per-transaction profit `p(r, t)` (§3.1).
//!
//! [`Moa`] bundles a catalog and hierarchy with the *mining on
//! availability* switch. With MOA **on**, each item's promotion codes are
//! ordered by favorability and a more favorable code is a "concept" of a
//! less favorable one; with MOA **off** (the paper's `−MOA` baselines)
//! only the plain concept hierarchy `H` generalizes sales and codes must
//! match exactly.
//!
//! `Moa` owns its catalog and hierarchy through [`Arc`]s so that trained
//! recommenders can embed one and stay self-contained; construction
//! precomputes the per-code favorability chains and the per-item concept
//! ancestor sets, making the per-sale operations allocation-light.

use crate::catalog::Catalog;
use crate::gensale::GenSale;
use crate::hierarchy::Hierarchy;
use crate::ids::{CodeId, ConceptId, ItemId};
use crate::sale::Sale;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How the purchase quantity is estimated when crediting a rule's head on
/// a transaction whose recorded code was *less* favorable (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum QuantityModel {
    /// **Saving MOA**: the customer keeps the original quantity (in base
    /// units) and saves money. The paper's default.
    #[default]
    Saving,
    /// **Buying MOA**: the customer keeps the original spending and buys
    /// more units.
    Buying,
}

/// The `MOA(H)` view over a catalog and hierarchy.
#[derive(Debug, Clone)]
pub struct Moa {
    catalog: Arc<Catalog>,
    hierarchy: Arc<Hierarchy>,
    enabled: bool,
    /// `favorable[item][code]` = codes `P` with `P ⪯ code` (includes the
    /// code itself). With MOA disabled, just `[code]`.
    favorable: Vec<Vec<Vec<CodeId>>>,
    /// Sorted transitive concept ancestors per item.
    item_anc: Vec<Vec<ConceptId>>,
}

impl Moa {
    /// Build the view. `enabled = false` reproduces the paper's `−MOA`
    /// baselines (exact-code matching).
    pub fn new(catalog: Arc<Catalog>, hierarchy: Arc<Hierarchy>, enabled: bool) -> Self {
        let favorable = catalog
            .iter()
            .map(|(item, def)| {
                (0..def.codes.len())
                    .map(|c| {
                        let c = CodeId(c as u16);
                        if enabled {
                            catalog.favorable_codes(item, c)
                        } else {
                            vec![c]
                        }
                    })
                    .collect()
            })
            .collect();
        let item_anc = (0..catalog.len())
            .map(|i| hierarchy.item_ancestors(ItemId(i as u32)))
            .collect();
        Self {
            catalog,
            hierarchy,
            enabled,
            favorable,
            item_anc,
        }
    }

    /// Convenience constructor that clones borrowed data into `Arc`s.
    pub fn from_refs(catalog: &Catalog, hierarchy: &Hierarchy, enabled: bool) -> Self {
        Self::new(
            Arc::new(catalog.clone()),
            Arc::new(hierarchy.clone()),
            enabled,
        )
    }

    /// Whether MOA generalization is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The underlying hierarchy.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Codes `P ⪯ code` of `item`, in catalog order.
    pub fn favorable_codes(&self, item: ItemId, code: CodeId) -> &[CodeId] {
        &self.favorable[item.index()][code.index()]
    }

    /// Sorted concept ancestors of `item` (precomputed).
    pub fn item_ancestors(&self, item: ItemId) -> &[ConceptId] {
        &self.item_anc[item.index()]
    }

    /// All generalized sales of a concrete sale, per Definition 3:
    /// `⟨I, P'⟩` for every `P' ⪯ P` (just `⟨I, P⟩` without MOA), the item
    /// node `I`, and every concept ancestor of `I`.
    pub fn generalizations_of_sale(&self, sale: &Sale) -> Vec<GenSale> {
        let mut out = Vec::with_capacity(4);
        self.generalizations_of_sale_into(sale, &mut out);
        out
    }

    /// As [`Self::generalizations_of_sale`], appending into `out`.
    pub fn generalizations_of_sale_into(&self, sale: &Sale, out: &mut Vec<GenSale>) {
        for &p in self.favorable_codes(sale.item, sale.code) {
            out.push(GenSale::ItemCode(sale.item, p));
        }
        out.push(GenSale::Item(sale.item));
        for &c in self.item_ancestors(sale.item) {
            out.push(GenSale::Concept(c));
        }
    }

    /// The admissible rule heads for a transaction's target sale: the
    /// `(item, code)` pairs that generalize it.
    pub fn head_candidates(&self, target: &Sale) -> Vec<(ItemId, CodeId)> {
        self.favorable_codes(target.item, target.code)
            .iter()
            .map(|&p| (target.item, p))
            .collect()
    }

    /// Does generalized sale `g` generalize the concrete sale `s`
    /// (reflexively on the code axis, per Definition 3 (ii))?
    pub fn generalizes_sale(&self, g: GenSale, s: &Sale) -> bool {
        match g {
            GenSale::Concept(c) => self.item_anc[s.item.index()].binary_search(&c).is_ok(),
            GenSale::Item(i) => i == s.item,
            GenSale::ItemCode(i, p) => {
                i == s.item
                    && if self.enabled {
                        self.favorable[i.index()][s.code.index()].contains(&p)
                    } else {
                        p == s.code
                    }
            }
        }
    }

    /// Is `a` a **strict** generalized sale of `b` in `MOA(H)` — i.e. a
    /// proper ancestor? Used for the "no body element generalizes
    /// another" constraint (Definition 4) and for rule dominance.
    pub fn strictly_generalizes(&self, a: GenSale, b: GenSale) -> bool {
        match (a, b) {
            (GenSale::Concept(ca), GenSale::Concept(cb)) => {
                self.hierarchy.is_concept_ancestor(ca, cb)
            }
            (GenSale::Concept(c), GenSale::Item(i))
            | (GenSale::Concept(c), GenSale::ItemCode(i, _)) => {
                self.item_anc[i.index()].binary_search(&c).is_ok()
            }
            (GenSale::Item(i), GenSale::ItemCode(j, _)) => i == j,
            (GenSale::ItemCode(i, p), GenSale::ItemCode(j, q)) => {
                self.enabled
                    && i == j
                    && p != q
                    && self
                        .catalog
                        .code(i, p)
                        .more_favorable_than(self.catalog.code(j, q))
            }
            _ => false,
        }
    }

    /// `a` generalizes `b`, allowing equality.
    pub fn generalizes_or_equal(&self, a: GenSale, b: GenSale) -> bool {
        a == b || self.strictly_generalizes(a, b)
    }

    /// Does the body `body` (a set of generalized non-target sales) match
    /// the customer `sales` — every body element generalizes *some* sale
    /// (Definition 3)?
    pub fn body_matches(&self, body: &[GenSale], sales: &[Sale]) -> bool {
        body.iter()
            .all(|&g| sales.iter().any(|s| self.generalizes_sale(g, s)))
    }

    /// The estimated purchase quantity (in *packages of the head's code*)
    /// when the head `(item, head_code)` is accepted against a recorded
    /// target sale, under the given quantity model. The recorded packing
    /// converts to base units so that mixed packings are handled; with the
    /// unit packings of the paper's synthetic data this is exactly `Q_t`
    /// (saving) or `P_t·Q_t / P` (buying).
    fn accepted_quantity(
        &self,
        head_item: ItemId,
        head_code: CodeId,
        t: &Sale,
        qm: QuantityModel,
    ) -> f64 {
        let head = self.catalog.code(head_item, head_code);
        let rec = self.catalog.code(t.item, t.code);
        match qm {
            QuantityModel::Saving => {
                // Same number of base units.
                (t.qty as f64 * rec.pack_qty as f64) / head.pack_qty as f64
            }
            QuantityModel::Buying => {
                // Same spending.
                let spending = rec.price.times(t.qty).as_dollars();
                if head.price.is_zero() {
                    // Free promotion: crediting infinite quantity is
                    // meaningless; keep the saving quantity instead.
                    (t.qty as f64 * rec.pack_qty as f64) / head.pack_qty as f64
                } else {
                    spending / head.price.as_dollars()
                }
            }
        }
    }

    /// The generated profit `p(r, t)` of a rule with head
    /// `(head_item, head_code)` on a transaction whose target sale is
    /// `target` (§3.1): `(Price(P) − Cost(P)) × Q` if the head generalizes
    /// the target sale, else `None` (a non-hit, profit 0).
    pub fn head_profit(
        &self,
        head_item: ItemId,
        head_code: CodeId,
        target: &Sale,
        qm: QuantityModel,
    ) -> Option<f64> {
        if head_item != target.item {
            return None;
        }
        let accepted = if self.enabled {
            self.favorable[target.item.index()][target.code.index()].contains(&head_code)
        } else {
            head_code == target.code
        };
        if !accepted {
            return None;
        }
        let margin = self
            .catalog
            .code(head_item, head_code)
            .margin()
            .as_dollars();
        Some(margin * self.accepted_quantity(head_item, head_code, target, qm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ItemDef;
    use crate::code::PromotionCode;
    use crate::money::Money;

    /// Paper Example 2: non-target Flaked_Chicken (FC) with prices $3,
    /// $3.5, $3.8; target Sunchip with prices $3.8, $4.5, $5. Unit packing,
    /// zero cost (costs omitted in the example).
    fn example2() -> (Catalog, Hierarchy) {
        let mut cat = Catalog::new();
        let prices = |ps: &[i64]| {
            ps.iter()
                .map(|&p| PromotionCode::unit(Money::from_cents(p), Money::ZERO))
                .collect::<Vec<_>>()
        };
        cat.push(ItemDef {
            name: "FC".into(),
            codes: prices(&[300, 350, 380]),
            is_target: false,
        });
        cat.push(ItemDef {
            name: "Sunchip".into(),
            codes: prices(&[380, 450, 500]),
            is_target: true,
        });
        let mut h = Hierarchy::flat(2);
        let food = h.add_concept("Food");
        let meat = h.add_concept("Meat");
        let chicken = h.add_concept("Chicken");
        h.link_concept(meat, food).unwrap();
        h.link_concept(chicken, meat).unwrap();
        h.link_item(ItemId(0), chicken).unwrap();
        (cat, h)
    }

    fn moa_of(cat: Catalog, h: Hierarchy, enabled: bool) -> Moa {
        Moa::new(Arc::new(cat), Arc::new(h), enabled)
    }

    const FC: ItemId = ItemId(0);
    const SUNCHIP: ItemId = ItemId(1);

    #[test]
    fn example2_generalized_sales_with_moa() {
        let (cat, h) = example2();
        let moa = moa_of(cat, h, true);
        // Sale of FC at $3.8 is generalized by ⟨FC,$3.8⟩, ⟨FC,$3.5⟩,
        // ⟨FC,$3⟩, FC, Chicken, Meat, Food.
        let g = moa.generalizations_of_sale(&Sale::new(FC, CodeId(2), 1));
        assert_eq!(g.len(), 7);
        assert!(g.contains(&GenSale::ItemCode(FC, CodeId(0))));
        assert!(g.contains(&GenSale::ItemCode(FC, CodeId(1))));
        assert!(g.contains(&GenSale::ItemCode(FC, CodeId(2))));
        assert!(g.contains(&GenSale::Item(FC)));
        // Sale at the lowest price $3 is only generalized by ⟨FC,$3⟩ on
        // the code axis.
        let g = moa.generalizations_of_sale(&Sale::new(FC, CodeId(0), 1));
        assert_eq!(
            g.iter().filter(|x| x.is_item_code()).count(),
            1,
            "cheapest code has no favorable alternative"
        );
    }

    #[test]
    fn example2_without_moa() {
        let (cat, h) = example2();
        let moa = moa_of(cat, h, false);
        let g = moa.generalizations_of_sale(&Sale::new(FC, CodeId(2), 1));
        // Exactly one item/code node (the exact code) plus item + concepts.
        assert_eq!(g.iter().filter(|x| x.is_item_code()).count(), 1);
        assert!(!moa.generalizes_sale(
            GenSale::ItemCode(FC, CodeId(0)),
            &Sale::new(FC, CodeId(2), 1)
        ));
    }

    #[test]
    fn head_candidates_follow_favorability() {
        let (cat, h) = example2();
        let moa = moa_of(cat, h, true);
        // Recorded Sunchip at $5: all three cheaper-or-equal codes apply.
        let heads = moa.head_candidates(&Sale::new(SUNCHIP, CodeId(2), 1));
        assert_eq!(heads.len(), 3);
        // Recorded at $3.8 (cheapest): only itself.
        let heads = moa.head_candidates(&Sale::new(SUNCHIP, CodeId(0), 1));
        assert_eq!(heads, vec![(SUNCHIP, CodeId(0))]);
    }

    #[test]
    fn strict_generalization_relation() {
        let (cat, h) = example2();
        let moa = moa_of(cat, h, true);
        let cheap = GenSale::ItemCode(FC, CodeId(0));
        let dear = GenSale::ItemCode(FC, CodeId(2));
        assert!(moa.strictly_generalizes(cheap, dear));
        assert!(!moa.strictly_generalizes(dear, cheap));
        assert!(!moa.strictly_generalizes(cheap, cheap), "strict");
        assert!(moa.strictly_generalizes(GenSale::Item(FC), dear));
        // Chicken is concept 2 in example2.
        let chicken = GenSale::Concept(crate::ids::ConceptId(2));
        assert!(moa.strictly_generalizes(chicken, GenSale::Item(FC)));
        assert!(moa.strictly_generalizes(chicken, dear));
        assert!(!moa.strictly_generalizes(GenSale::Item(FC), GenSale::Item(FC)));
        assert!(moa.generalizes_or_equal(GenSale::Item(FC), GenSale::Item(FC)));
    }

    #[test]
    fn no_moa_disables_code_generalization_only() {
        let (cat, h) = example2();
        let moa = moa_of(cat, h, false);
        let cheap = GenSale::ItemCode(FC, CodeId(0));
        let dear = GenSale::ItemCode(FC, CodeId(2));
        assert!(!moa.strictly_generalizes(cheap, dear));
        assert!(moa.strictly_generalizes(GenSale::Item(FC), dear));
    }

    #[test]
    fn body_matching() {
        let (cat, h) = example2();
        let moa = moa_of(cat, h, true);
        let sales = [Sale::new(FC, CodeId(2), 1)];
        assert!(moa.body_matches(&[GenSale::ItemCode(FC, CodeId(0))], &sales));
        assert!(moa.body_matches(&[GenSale::Item(FC)], &sales));
        assert!(!moa.body_matches(&[GenSale::ItemCode(SUNCHIP, CodeId(0))], &sales));
        // Empty body matches anything (the default rule).
        assert!(moa.body_matches(&[], &sales));
        assert!(moa.body_matches(&[], &[]));
    }

    #[test]
    fn head_profit_saving_and_buying() {
        let (cat, h) = example2();
        // Rebuild Sunchip with a $2 cost to make margins interesting.
        let mut cat2 = Catalog::new();
        cat2.push(cat.item(FC).clone());
        cat2.push(ItemDef {
            name: "Sunchip".into(),
            codes: [380i64, 450, 500]
                .iter()
                .map(|&p| PromotionCode::unit(Money::from_cents(p), Money::from_cents(200)))
                .collect(),
            is_target: true,
        });
        let moa = moa_of(cat2, h, true);
        // Recorded: 2 Sunchips at $5. Head $4.5:
        let t = Sale::new(SUNCHIP, CodeId(2), 2);
        // Saving: Q = 2, profit = (4.5 − 2) × 2 = 5.
        let p = moa
            .head_profit(SUNCHIP, CodeId(1), &t, QuantityModel::Saving)
            .unwrap();
        assert!((p - 5.0).abs() < 1e-12);
        // Buying: spending 10 at price 4.5 ⇒ Q = 2.222…, profit = 2.5 × Q.
        let p = moa
            .head_profit(SUNCHIP, CodeId(1), &t, QuantityModel::Buying)
            .unwrap();
        assert!((p - 2.5 * (10.0 / 4.5)).abs() < 1e-12);
        // A *higher* price head does not generalize ⇒ None.
        assert!(moa
            .head_profit(
                SUNCHIP,
                CodeId(2),
                &Sale::new(SUNCHIP, CodeId(0), 1),
                QuantityModel::Saving
            )
            .is_none());
        // Wrong item ⇒ None.
        assert!(moa
            .head_profit(FC, CodeId(0), &t, QuantityModel::Saving)
            .is_none());
    }

    #[test]
    fn saving_profit_never_exceeds_recorded_profit_same_cost() {
        // With equal costs across codes (the synthetic setup), saving MOA
        // profit ≤ recorded profit — the reason gain ≤ 1 in Fig 3(a).
        let (cat, h) = example2();
        let moa = moa_of(cat, h, true);
        let t = Sale::new(SUNCHIP, CodeId(2), 3);
        let recorded = moa
            .catalog()
            .code(t.item, t.code)
            .margin()
            .times(t.qty)
            .as_dollars();
        for c in 0..3u16 {
            if let Some(p) = moa.head_profit(SUNCHIP, CodeId(c), &t, QuantityModel::Saving) {
                assert!(p <= recorded + 1e-12);
            }
        }
    }

    #[test]
    fn mixed_packing_quantities() {
        let mut cat = Catalog::new();
        cat.push(ItemDef {
            name: "milk".into(),
            codes: vec![
                PromotionCode::packed(Money::from_cents(320), Money::from_cents(200), 4),
                PromotionCode::packed(Money::from_cents(320), Money::from_cents(200), 8),
            ],
            is_target: true,
        });
        let h = Hierarchy::flat(1);
        let moa = moa_of(cat, h, true);
        // Head = 8-pack (same price, more value ⇒ ⪯ the 4-pack record).
        let t = Sale::new(ItemId(0), CodeId(0), 2); // 8 units recorded
        let p = moa
            .head_profit(ItemId(0), CodeId(1), &t, QuantityModel::Saving)
            .unwrap();
        // 8 units = 1 package of 8 ⇒ profit = margin × 1 = $1.20.
        assert!((p - 1.2).abs() < 1e-12);
    }

    /// The documented buying-MOA free-promotion fallback: a zero-price
    /// head cannot credit `spending / 0` quantity, so `accepted_quantity`
    /// keeps the saving quantity instead.
    #[test]
    fn buying_free_promotion_keeps_saving_quantity() {
        let mut cat = Catalog::new();
        cat.push(ItemDef {
            name: "milk".into(),
            codes: vec![
                PromotionCode::unit(Money::from_cents(200), Money::from_cents(100)),
                // Free promotion: price $0, cost 25¢.
                PromotionCode::unit(Money::ZERO, Money::from_cents(25)),
            ],
            is_target: true,
        });
        let moa = moa_of(cat, Hierarchy::flat(1), true);
        let t = Sale::new(ItemId(0), CodeId(0), 3); // 3 units at $2
        let buying = moa
            .head_profit(ItemId(0), CodeId(1), &t, QuantityModel::Buying)
            .unwrap();
        let saving = moa
            .head_profit(ItemId(0), CodeId(1), &t, QuantityModel::Saving)
            .unwrap();
        // Fallback: Q stays 3 (not spending/0 = ∞), margin = −$0.25.
        assert!((buying - (-0.25 * 3.0)).abs() < 1e-12);
        assert_eq!(buying, saving);
        assert!(buying.is_finite());
    }

    /// Same fallback with `pack_qty > 1` on both the recorded code and
    /// the free head: the quantity converts through base units.
    #[test]
    fn buying_free_promotion_mixed_packing() {
        let mut cat = Catalog::new();
        cat.push(ItemDef {
            name: "milk".into(),
            codes: vec![
                PromotionCode::packed(Money::from_cents(320), Money::from_cents(200), 4),
                // Free 8-pack (price $0 ≤ $3.20, pack 8 ≥ 4 ⇒ favorable).
                PromotionCode::packed(Money::ZERO, Money::from_cents(50), 8),
            ],
            is_target: true,
        });
        let moa = moa_of(cat, Hierarchy::flat(1), true);
        let t = Sale::new(ItemId(0), CodeId(0), 2); // 2 × 4-pack = 8 base units
        let buying = moa
            .head_profit(ItemId(0), CodeId(1), &t, QuantityModel::Buying)
            .unwrap();
        // 8 base units = 1 package of 8; margin = −$0.50 ⇒ profit −0.5.
        assert!((buying - (-0.5)).abs() < 1e-12);
        let saving = moa
            .head_profit(ItemId(0), CodeId(1), &t, QuantityModel::Saving)
            .unwrap();
        assert_eq!(buying, saving);
    }

    #[test]
    fn precomputed_ancestors_match_hierarchy() {
        let (cat, h) = example2();
        let expect = h.item_ancestors(FC);
        let moa = moa_of(cat, h, true);
        assert_eq!(moa.item_ancestors(FC), expect.as_slice());
        assert!(moa.item_ancestors(SUNCHIP).is_empty());
    }
}
