//! Ergonomic catalog construction for examples and tests.

use crate::catalog::{Catalog, ItemDef};
use crate::code::PromotionCode;
use crate::error::TxnError;
use crate::ids::{CodeId, ItemId};
use crate::money::Money;
use std::collections::HashMap;

/// Builds a [`Catalog`] with name-based lookup and dollar-denominated
/// promotion codes, so application code reads like the paper's examples:
///
/// ```
/// use pm_txn::CatalogBuilder;
///
/// let mut b = CatalogBuilder::new();
/// b.non_target("Perfume").unit_code(45.0, 20.0);
/// b.target("Lipstick").unit_code(12.0, 5.0);
/// b.target("Diamond").unit_code(990.0, 600.0);
/// let catalog = b.build().unwrap();
/// assert_eq!(catalog.len(), 3);
/// ```
#[derive(Debug, Default)]
pub struct CatalogBuilder {
    items: Vec<ItemDef>,
    by_name: HashMap<String, ItemId>,
    duplicate: Option<String>,
}

/// Handle for adding promotion codes to one item under construction.
#[derive(Debug)]
pub struct ItemBuilder<'a> {
    def: &'a mut ItemDef,
}

impl<'a> ItemBuilder<'a> {
    /// Add a unit-packing code priced in dollars.
    pub fn unit_code(&mut self, price: f64, cost: f64) -> &mut Self {
        self.def.codes.push(PromotionCode::unit(
            Money::from_dollars_f64(price),
            Money::from_dollars_f64(cost),
        ));
        self
    }

    /// Add a multi-pack code priced in dollars.
    pub fn packed_code(&mut self, price: f64, cost: f64, pack_qty: u32) -> &mut Self {
        self.def.codes.push(PromotionCode::packed(
            Money::from_dollars_f64(price),
            Money::from_dollars_f64(cost),
            pack_qty,
        ));
        self
    }
}

impl CatalogBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn add(&mut self, name: &str, is_target: bool) -> ItemBuilder<'_> {
        if self.by_name.contains_key(name) && self.duplicate.is_none() {
            self.duplicate = Some(name.to_string());
        }
        let id = ItemId(self.items.len() as u32);
        self.by_name.insert(name.to_string(), id);
        self.items.push(ItemDef {
            name: name.to_string(),
            codes: Vec::new(),
            is_target,
        });
        ItemBuilder {
            def: self.items.last_mut().expect("just pushed"),
        }
    }

    /// Start a target item.
    pub fn target(&mut self, name: &str) -> ItemBuilder<'_> {
        self.add(name, true)
    }

    /// Start a non-target item.
    pub fn non_target(&mut self, name: &str) -> ItemBuilder<'_> {
        self.add(name, false)
    }

    /// Look up an item id by name (available before `build`).
    pub fn id(&self, name: &str) -> Option<ItemId> {
        self.by_name.get(name).copied()
    }

    /// The first code id of an item — convenient when items have a single
    /// code.
    pub fn first_code(&self) -> CodeId {
        CodeId(0)
    }

    /// Finish, validating the catalog.
    pub fn build(self) -> Result<Catalog, TxnError> {
        if let Some(name) = self.duplicate {
            return Err(TxnError::DuplicateName(name));
        }
        let mut cat = Catalog::new();
        for item in self.items {
            cat.push(item);
        }
        cat.validate()?;
        Ok(cat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_by_name() {
        let mut b = CatalogBuilder::new();
        b.non_target("bread").unit_code(2.5, 1.0);
        b.target("milk")
            .packed_code(3.2, 2.0, 4)
            .unit_code(1.0, 0.5);
        let bread = b.id("bread").unwrap();
        let milk = b.id("milk").unwrap();
        let cat = b.build().unwrap();
        assert!(!cat.item(bread).is_target);
        assert!(cat.item(milk).is_target);
        assert_eq!(cat.item(milk).codes.len(), 2);
        assert_eq!(cat.code(milk, CodeId(0)).pack_qty, 4);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = CatalogBuilder::new();
        b.target("x").unit_code(1.0, 0.5);
        b.target("x").unit_code(2.0, 0.5);
        assert_eq!(b.build().unwrap_err(), TxnError::DuplicateName("x".into()));
    }

    #[test]
    fn empty_codes_rejected_at_build() {
        let mut b = CatalogBuilder::new();
        b.target("x");
        assert_eq!(b.build().unwrap_err(), TxnError::NoCodes(ItemId(0)));
    }
}
