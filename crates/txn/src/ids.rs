//! Strongly-typed identifiers.
//!
//! Items, concepts and promotion codes live in separate id spaces; the
//! newtypes below keep them from being mixed up at compile time. All ids
//! are dense indices into their owning [`Catalog`](crate::Catalog) or
//! [`Hierarchy`](crate::Hierarchy).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an item (leaf of the concept hierarchy). Dense index into
/// the catalog's item table.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ItemId(pub u32);

/// Identifier of a concept (internal node of the hierarchy). Dense index
/// into the hierarchy's concept table.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ConceptId(pub u32);

/// Identifier of a promotion code, scoped to its item: the `k`-th code of
/// an item has `CodeId(k)`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct CodeId(pub u16);

impl ItemId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ConceptId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl CodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "item#{}", self.0)
    }
}

impl fmt::Display for ConceptId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "concept#{}", self.0)
    }
}

impl fmt::Display for CodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "code#{}", self.0)
    }
}

impl From<u32> for ItemId {
    fn from(v: u32) -> Self {
        ItemId(v)
    }
}

impl From<u32> for ConceptId {
    fn from(v: u32) -> Self {
        ConceptId(v)
    }
}

impl From<u16> for CodeId {
    fn from(v: u16) -> Self {
        CodeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_raw() {
        assert!(ItemId(1) < ItemId(2));
        assert!(ConceptId(0) < ConceptId(5));
        assert!(CodeId(3) > CodeId(1));
    }

    #[test]
    fn display_forms() {
        assert_eq!(ItemId(7).to_string(), "item#7");
        assert_eq!(ConceptId(2).to_string(), "concept#2");
        assert_eq!(CodeId(0).to_string(), "code#0");
    }

    #[test]
    fn index_round_trip() {
        assert_eq!(ItemId::from(9u32).index(), 9);
        assert_eq!(CodeId::from(3u16).index(), 3);
    }
}
