//! The item catalog: item definitions, their promotion codes, and the
//! target / non-target split.

use crate::code::PromotionCode;
use crate::error::TxnError;
use crate::ids::{CodeId, ItemId};
use serde::{Deserialize, Serialize};

/// One item: a name, its promotion codes, and whether it is a *target*
/// item (eligible for recommendation) or a non-target item (a trigger).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ItemDef {
    /// Human-readable name (unique within a catalog built through
    /// [`CatalogBuilder`](crate::CatalogBuilder)).
    pub name: String,
    /// The item's promotion codes; a sale refers to one by [`CodeId`].
    pub codes: Vec<PromotionCode>,
    /// Target items are recommended; non-target items trigger rules.
    pub is_target: bool,
}

/// The set of all items, indexed by [`ItemId`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Catalog {
    items: Vec<ItemDef>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an item definition, returning its id.
    pub fn push(&mut self, item: ItemDef) -> ItemId {
        let id = ItemId(self.items.len() as u32);
        self.items.push(item);
        id
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no items are defined.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The definition of `item`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id (ids are produced by this catalog, so
    /// that is a logic error).
    pub fn item(&self, item: ItemId) -> &ItemDef {
        &self.items[item.index()]
    }

    /// The definition of `item`, or `None` when out of range.
    pub fn get(&self, item: ItemId) -> Option<&ItemDef> {
        self.items.get(item.index())
    }

    /// The promotion code `code` of `item`.
    pub fn code(&self, item: ItemId, code: CodeId) -> &PromotionCode {
        &self.items[item.index()].codes[code.index()]
    }

    /// Checked code lookup.
    pub fn try_code(&self, item: ItemId, code: CodeId) -> Result<&PromotionCode, TxnError> {
        let def = self.get(item).ok_or(TxnError::UnknownItem(item))?;
        def.codes
            .get(code.index())
            .ok_or(TxnError::UnknownCode(item, code))
    }

    /// Iterate `(id, def)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ItemId, &ItemDef)> {
        self.items
            .iter()
            .enumerate()
            .map(|(i, d)| (ItemId(i as u32), d))
    }

    /// Ids of all target items.
    pub fn target_items(&self) -> Vec<ItemId> {
        self.iter()
            .filter(|(_, d)| d.is_target)
            .map(|(i, _)| i)
            .collect()
    }

    /// Ids of all non-target items.
    pub fn non_target_items(&self) -> Vec<ItemId> {
        self.iter()
            .filter(|(_, d)| !d.is_target)
            .map(|(i, _)| i)
            .collect()
    }

    /// For a target item's recorded code, the codes that are *reflexively
    /// favorable* (`P ⪯ recorded`): exactly the heads `(I, P)` that
    /// generalize the recorded target sale under MOA. The recorded code
    /// itself is always included.
    pub fn favorable_codes(&self, item: ItemId, recorded: CodeId) -> Vec<CodeId> {
        let def = self.item(item);
        let rec = &def.codes[recorded.index()];
        def.codes
            .iter()
            .enumerate()
            .filter(|(_, c)| c.favorable_or_equal(rec))
            .map(|(i, _)| CodeId(i as u16))
            .collect()
    }

    /// Validate internal consistency: every item has at least one code and
    /// at least one target item exists.
    pub fn validate(&self) -> Result<(), TxnError> {
        for (id, def) in self.iter() {
            if def.codes.is_empty() {
                return Err(TxnError::NoCodes(id));
            }
        }
        if !self.items.iter().any(|d| d.is_target) {
            return Err(TxnError::NoTargetItems);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::money::Money;

    fn milk_codes() -> Vec<PromotionCode> {
        // Paper Example 1: 2%-Milk.
        vec![
            PromotionCode::packed(Money::from_cents(320), Money::from_cents(200), 4),
            PromotionCode::packed(Money::from_cents(300), Money::from_cents(180), 4),
            PromotionCode::unit(Money::from_cents(120), Money::from_cents(50)),
            PromotionCode::unit(Money::from_cents(100), Money::from_cents(50)),
        ]
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.push(ItemDef {
            name: "2%-Milk".into(),
            codes: milk_codes(),
            is_target: true,
        });
        c.push(ItemDef {
            name: "Bread".into(),
            codes: vec![PromotionCode::unit(
                Money::from_cents(250),
                Money::from_cents(100),
            )],
            is_target: false,
        });
        c
    }

    #[test]
    fn lookups() {
        let c = catalog();
        assert_eq!(c.len(), 2);
        assert_eq!(c.item(ItemId(0)).name, "2%-Milk");
        assert_eq!(c.code(ItemId(0), CodeId(1)).price, Money::from_cents(300));
        assert!(c.try_code(ItemId(0), CodeId(4)).is_err());
        assert!(c.try_code(ItemId(9), CodeId(0)).is_err());
    }

    #[test]
    fn target_split() {
        let c = catalog();
        assert_eq!(c.target_items(), vec![ItemId(0)]);
        assert_eq!(c.non_target_items(), vec![ItemId(1)]);
    }

    #[test]
    fn example1_profit() {
        // Paper Example 1: sale <Milk, ($3.2/4-pack,$2), 5> generates
        // 5 × (3.2 − 2) = $6 profit.
        let c = catalog();
        let code = c.code(ItemId(0), CodeId(0));
        assert_eq!(code.margin().times(5), Money::from_dollars(6));
    }

    #[test]
    fn favorable_codes_for_milk() {
        let c = catalog();
        // Recorded $3.2/4-pack: $3.0/4-pack is cheaper at same value; the
        // single packs have less value at a lower price ⇒ incomparable.
        let fav = c.favorable_codes(ItemId(0), CodeId(0));
        assert_eq!(fav, vec![CodeId(0), CodeId(1)]);
        // Recorded $1.2/pack: $1/pack is favorable; 4-packs cost more in
        // absolute price ⇒ not ⪯ under the package-price axis.
        let fav = c.favorable_codes(ItemId(0), CodeId(2));
        assert_eq!(fav, vec![CodeId(2), CodeId(3)]);
        // The cheapest code is only matched by itself.
        let fav = c.favorable_codes(ItemId(0), CodeId(3));
        assert_eq!(fav, vec![CodeId(3)]);
    }

    #[test]
    fn validation() {
        let c = catalog();
        assert!(c.validate().is_ok());

        let mut no_codes = Catalog::new();
        no_codes.push(ItemDef {
            name: "x".into(),
            codes: vec![],
            is_target: true,
        });
        assert_eq!(no_codes.validate(), Err(TxnError::NoCodes(ItemId(0))));

        let mut no_targets = Catalog::new();
        no_targets.push(ItemDef {
            name: "x".into(),
            codes: vec![PromotionCode::unit(Money::from_cents(1), Money::ZERO)],
            is_target: false,
        });
        assert_eq!(no_targets.validate(), Err(TxnError::NoTargetItems));
    }
}
