//! CSV import/export for transaction data — the ingestion surface for
//! real point-of-sale exports.
//!
//! Two flat files describe a dataset:
//!
//! **Catalog CSV** (`item,role,price,cost,pack`), one row per promotion
//! code; consecutive rows of the same item accumulate its codes in order:
//!
//! ```csv
//! item,role,price,cost,pack
//! 2%-Milk,target,3.20,2.00,4
//! 2%-Milk,target,1.00,0.50,1
//! Bread,nontarget,2.50,1.00,1
//! ```
//!
//! **Sales CSV** (`txn,item,code,qty`), one row per sale; the target sale
//! of a transaction is recognized by its item's role:
//!
//! ```csv
//! txn,item,code,qty
//! 1,Bread,0,2
//! 1,2%-Milk,1,1
//! ```
//!
//! The parser is a strict RFC-4180 subset (no embedded quotes/commas —
//! item names here are identifiers, not prose) chosen over a dependency
//! because the workspace's allowed crate set has no CSV reader.

use crate::catalog::{Catalog, ItemDef};
use crate::code::PromotionCode;
use crate::hierarchy::Hierarchy;
use crate::ids::{CodeId, ItemId};
use crate::money::Money;
use crate::sale::{Sale, Transaction};
use crate::TransactionSet;
use std::collections::HashMap;

/// Errors from CSV ingestion. Messages carry the rejected token (an
/// operator fixing a point-of-sale export needs to see *what* failed to
/// parse, not just that something did) and `role` names which of the
/// two files the line belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// Which file the error is from: `"catalog"` or `"sales"`.
    pub role: &'static str,
    /// 1-based line number (0 for whole-file errors).
    pub line: usize,
    /// What went wrong, including the offending field text.
    pub message: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} line {}: {}", self.role, self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

fn err(role: &'static str, line: usize, message: impl Into<String>) -> CsvError {
    CsvError {
        role,
        line,
        message: message.into(),
    }
}

fn fields(line: &str) -> Vec<&str> {
    line.split(',').map(str::trim).collect()
}

/// Parse a catalog CSV (header required).
pub fn parse_catalog(text: &str) -> Result<(Catalog, HashMap<String, ItemId>), CsvError> {
    const ROLE: &str = "catalog";
    let err = |line, message: String| err(ROLE, line, message);
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| err(1, "empty file".into()))?;
    if fields(header) != vec!["item", "role", "price", "cost", "pack"] {
        return Err(err(1, "header must be item,role,price,cost,pack".into()));
    }
    let mut catalog = Catalog::new();
    let mut by_name: HashMap<String, ItemId> = HashMap::new();
    let mut defs: Vec<ItemDef> = Vec::new();
    for (i, line) in lines {
        let ln = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let f = fields(line);
        if f.len() != 5 {
            return Err(err(ln, format!("expected 5 fields, got {}", f.len())));
        }
        let is_target = match f[1] {
            "target" => true,
            "nontarget" | "non-target" => false,
            other => {
                return Err(err(
                    ln,
                    format!("role must be target|nontarget, got {other:?}"),
                ))
            }
        };
        let price: f64 = f[2]
            .parse()
            .map_err(|_| err(ln, format!("bad price {:?}", f[2])))?;
        let cost: f64 = f[3]
            .parse()
            .map_err(|_| err(ln, format!("bad cost {:?}", f[3])))?;
        let pack: u32 = f[4]
            .parse()
            .map_err(|_| err(ln, format!("bad pack {:?}", f[4])))?;
        // `"inf".parse::<f64>()` succeeds, and a negative price or cost
        // is always a data error in a point-of-sale export — reject both
        // here rather than panicking later in the Money constructor.
        if !price.is_finite() || price < 0.0 {
            return Err(err(ln, format!("price must be ≥ 0, got {:?}", f[2])));
        }
        if !cost.is_finite() || cost < 0.0 {
            return Err(err(ln, format!("cost must be ≥ 0, got {:?}", f[3])));
        }
        if pack == 0 {
            return Err(err(ln, format!("pack must be ≥ 1, got {:?}", f[4])));
        }
        let code = PromotionCode::packed(
            Money::from_dollars_f64(price),
            Money::from_dollars_f64(cost),
            pack,
        );
        match by_name.get(f[0]) {
            Some(&id) => {
                if defs[id.index()].is_target != is_target {
                    return Err(err(ln, format!("item {:?} changes role", f[0])));
                }
                defs[id.index()].codes.push(code);
            }
            None => {
                let id = ItemId(defs.len() as u32);
                by_name.insert(f[0].to_string(), id);
                defs.push(ItemDef {
                    name: f[0].to_string(),
                    codes: vec![code],
                    is_target,
                });
            }
        }
    }
    for def in defs {
        catalog.push(def);
    }
    Ok((catalog, by_name))
}

/// Parse a sales CSV against a parsed catalog and assemble the validated
/// dataset (flat hierarchy). Transactions appear in first-seen order of
/// their `txn` key.
pub fn parse_sales(
    text: &str,
    catalog: Catalog,
    by_name: &HashMap<String, ItemId>,
) -> Result<TransactionSet, CsvError> {
    const ROLE: &str = "sales";
    let err = |line, message: String| err(ROLE, line, message);
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| err(1, "empty file".into()))?;
    if fields(header) != vec!["txn", "item", "code", "qty"] {
        return Err(err(1, "header must be txn,item,code,qty".into()));
    }
    // txn key → (non-target sales, target sale + its line number)
    type Group = (Vec<Sale>, Option<(Sale, usize)>);
    let mut order: Vec<String> = Vec::new();
    let mut groups: HashMap<String, Group> = HashMap::new();
    for (i, line) in lines {
        let ln = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let f = fields(line);
        if f.len() != 4 {
            return Err(err(ln, format!("expected 4 fields, got {}", f.len())));
        }
        let item = *by_name
            .get(f[1])
            .ok_or_else(|| err(ln, format!("unknown item {:?} (not in the catalog)", f[1])))?;
        let code: u16 = f[2]
            .parse()
            .map_err(|_| err(ln, format!("bad code {:?}", f[2])))?;
        let qty: u32 = f[3]
            .parse()
            .map_err(|_| err(ln, format!("bad qty {:?}", f[3])))?;
        if qty == 0 {
            return Err(err(ln, format!("qty must be ≥ 1, got {:?}", f[3])));
        }
        let sale = Sale::new(item, CodeId(code), qty);
        let entry = groups.entry(f[0].to_string()).or_insert_with(|| {
            order.push(f[0].to_string());
            (Vec::new(), None)
        });
        if catalog.item(item).is_target {
            if let Some((_, first_ln)) = entry.1 {
                return Err(err(
                    ln,
                    format!(
                        "transaction {:?} has a second target sale (first at line {first_ln})",
                        f[0]
                    ),
                ));
            }
            entry.1 = Some((sale, ln));
        } else {
            entry.0.push(sale);
        }
    }
    let mut txns = Vec::with_capacity(order.len());
    for key in order {
        let (nts, target) = groups.remove(&key).expect("grouped above");
        let (target, _) =
            target.ok_or_else(|| err(0, format!("transaction {key:?} has no target sale")))?;
        txns.push(Transaction::new(nts, target));
    }
    let n = catalog.len();
    TransactionSet::new(catalog, Hierarchy::flat(n), txns)
        .map_err(|e| err(0, format!("validation: {e}")))
}

/// Render a dataset back to the two CSVs: `(catalog_csv, sales_csv)`.
pub fn to_csv(data: &TransactionSet) -> (String, String) {
    let catalog = data.catalog();
    let mut cat = String::from("item,role,price,cost,pack\n");
    for (_, def) in catalog.iter() {
        for code in &def.codes {
            cat.push_str(&format!(
                "{},{},{:.2},{:.2},{}\n",
                def.name,
                if def.is_target { "target" } else { "nontarget" },
                code.price.as_dollars(),
                code.cost.as_dollars(),
                code.pack_qty
            ));
        }
    }
    let mut sales = String::from("txn,item,code,qty\n");
    for (i, t) in data.transactions().iter().enumerate() {
        for s in t
            .non_target_sales()
            .iter()
            .chain(std::iter::once(t.target_sale()))
        {
            sales.push_str(&format!(
                "{},{},{},{}\n",
                i + 1,
                catalog.item(s.item).name,
                s.code.0,
                s.qty
            ));
        }
    }
    (cat, sales)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CATALOG: &str = "\
item,role,price,cost,pack
2%-Milk,target,3.20,2.00,4
2%-Milk,target,1.00,0.50,1
Bread,nontarget,2.50,1.00,1
Jam,nontarget,4.00,1.50,1
";

    const SALES: &str = "\
txn,item,code,qty
1,Bread,0,2
1,2%-Milk,1,1
2,Jam,0,1
2,Bread,0,1
2,2%-Milk,0,1
";

    #[test]
    fn round_trip() {
        let (catalog, names) = parse_catalog(CATALOG).unwrap();
        assert_eq!(catalog.len(), 3);
        let milk = names["2%-Milk"];
        assert!(catalog.item(milk).is_target);
        assert_eq!(catalog.item(milk).codes.len(), 2);
        assert_eq!(catalog.item(milk).codes[0].pack_qty, 4);

        let data = parse_sales(SALES, catalog, &names).unwrap();
        assert_eq!(data.len(), 2);
        assert_eq!(data.transactions()[0].basket_size(), 1);
        assert_eq!(data.transactions()[1].basket_size(), 2);
        assert_eq!(data.transactions()[0].target_sale().item, milk);

        // Export and re-import reproduces the dataset.
        let (cat_csv, sales_csv) = to_csv(&data);
        let (catalog2, names2) = parse_catalog(&cat_csv).unwrap();
        let data2 = parse_sales(&sales_csv, catalog2, &names2).unwrap();
        assert_eq!(data2.len(), data.len());
        assert_eq!(data2.total_recorded_profit(), data.total_recorded_profit());
        assert_eq!(data2.transactions(), data.transactions());
    }

    #[test]
    fn catalog_errors() {
        assert!(parse_catalog("").is_err());
        assert!(parse_catalog("wrong,header\n").is_err());
        let bad_role = "item,role,price,cost,pack\nX,boss,1,1,1\n";
        assert_eq!(parse_catalog(bad_role).unwrap_err().line, 2);
        let bad_pack = "item,role,price,cost,pack\nX,target,1,1,0\n";
        assert!(parse_catalog(bad_pack).is_err());
        let role_flip = "item,role,price,cost,pack\nX,target,1,1,1\nX,nontarget,2,1,1\n";
        assert!(parse_catalog(role_flip).is_err());
    }

    #[test]
    fn sales_errors() {
        let (catalog, names) = parse_catalog(CATALOG).unwrap();
        // Unknown item.
        let r = parse_sales("txn,item,code,qty\n1,Ghost,0,1\n", catalog.clone(), &names);
        assert!(r.is_err());
        // Two target sales in one transaction.
        let two = "txn,item,code,qty\n1,2%-Milk,0,1\n1,2%-Milk,1,1\n";
        let r = parse_sales(two, catalog.clone(), &names);
        assert!(r.unwrap_err().message.contains("second target"));
        // No target sale.
        let none = "txn,item,code,qty\n1,Bread,0,1\n";
        assert!(parse_sales(none, catalog.clone(), &names)
            .unwrap_err()
            .message
            .contains("no target"));
        // Out-of-range code caught by validation.
        let bad_code = "txn,item,code,qty\n1,Bread,7,1\n1,2%-Milk,0,1\n";
        assert!(parse_sales(bad_code, catalog, &names)
            .unwrap_err()
            .message
            .contains("validation"));
    }

    /// Errors must carry the rejected token and the file role — the
    /// satellite fix for the old bare "bad price" messages.
    #[test]
    fn errors_carry_token_and_role() {
        // Negative price.
        let e = parse_catalog("item,role,price,cost,pack\nX,target,-1.50,1,1\n").unwrap_err();
        assert_eq!(e.role, "catalog");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("\"-1.50\""), "{e}");
        assert!(e.to_string().starts_with("catalog line 2:"), "{e}");
        // Negative cost.
        let e = parse_catalog("item,role,price,cost,pack\nX,target,1,-0.25,1\n").unwrap_err();
        assert!(
            e.message.contains("cost") && e.message.contains("\"-0.25\""),
            "{e}"
        );
        // Non-numeric price still names the token.
        let e = parse_catalog("item,role,price,cost,pack\nX,target,abc,1,1\n").unwrap_err();
        assert!(e.message.contains("\"abc\""), "{e}");
        // Non-finite price parses as f64 but is rejected (it used to
        // panic inside Money::from_dollars_f64).
        let e = parse_catalog("item,role,price,cost,pack\nX,target,inf,1,1\n").unwrap_err();
        assert!(e.message.contains("price"), "{e}");

        let (catalog, names) = parse_catalog(CATALOG).unwrap();
        // qty = 0.
        let e = parse_sales(
            "txn,item,code,qty\n1,Bread,0,0\n1,2%-Milk,0,1\n",
            catalog.clone(),
            &names,
        )
        .unwrap_err();
        assert_eq!(e.role, "sales");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("qty must be ≥ 1"), "{e}");
        // Sale referencing an item missing from the catalog.
        let e = parse_sales("txn,item,code,qty\n1,Ghost,0,1\n", catalog, &names).unwrap_err();
        assert_eq!(e.role, "sales");
        assert!(e.message.contains("\"Ghost\""), "{e}");
        assert!(e.message.contains("catalog"), "{e}");
    }

    #[test]
    fn whitespace_and_blank_lines_tolerated() {
        let csv = "item,role,price,cost,pack\n\n  Bread , nontarget , 2.50 , 1.00 , 1 \nT,target,1,0.5,1\n";
        let (catalog, names) = parse_catalog(csv).unwrap();
        assert_eq!(catalog.len(), 2);
        assert!(names.contains_key("Bread"));
    }
}
