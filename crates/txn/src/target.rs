//! Target filters: head-domain restrictions for targeted mining.
//!
//! A [`TargetFilter`] restricts which rule heads `(item, code)` a mining
//! or serving run is interested in — the TargetUM-style "targeted query"
//! workload. Three predicate shapes cover the practical questions:
//!
//! * **`Items`** — "mine only for these target items";
//! * **`Subtree`** — "mine only for target items below this concept"
//!   (hierarchy-driven category queries);
//! * **`Codes`** — "mine only for these promotion-code classes" (e.g.
//!   only the steepest discount tier, across all items).
//!
//! The filter is a pure predicate on heads. Mining with a filter is
//! defined to be equivalent to mining without it and discarding every
//! rule whose head fails the predicate (gen indices renumbered) — the
//! optimized DFS path in `pm-rules` must reproduce that byte for byte.

use crate::catalog::Catalog;
use crate::hierarchy::Hierarchy;
use crate::ids::{CodeId, ConceptId, ItemId};
use serde::{Deserialize, Serialize};

/// A predicate over rule heads `(item, code)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TargetFilter {
    /// Heads whose item is one of these.
    Items(Vec<ItemId>),
    /// Heads whose item sits below this concept in the hierarchy.
    Subtree(ConceptId),
    /// Heads whose promotion code is one of these code classes.
    Codes(Vec<CodeId>),
}

impl TargetFilter {
    /// Does the head `(item, code)` fall inside the target?
    pub fn matches(&self, hierarchy: &Hierarchy, item: ItemId, code: CodeId) -> bool {
        match self {
            TargetFilter::Items(items) => items.contains(&item),
            TargetFilter::Subtree(c) => hierarchy.is_item_ancestor(*c, item),
            TargetFilter::Codes(codes) => codes.contains(&code),
        }
    }

    /// Parse a CLI/wire spec:
    ///
    /// * `items:NAME[,NAME...]` — item names (or raw ids) from `catalog`;
    /// * `subtree:CONCEPT` — a concept name (or raw id) from `hierarchy`;
    /// * `codes:K[,K...]` — promotion-code indices.
    ///
    /// Errors are complete human-readable messages suitable for the CLI
    /// and the serve protocol's `"error"` field.
    pub fn parse(spec: &str, catalog: &Catalog, hierarchy: &Hierarchy) -> Result<Self, String> {
        let (kind, rest) = spec.split_once(':').ok_or_else(|| {
            format!("bad target spec {spec:?}: expected items:…, subtree:…, or codes:…")
        })?;
        match kind {
            "items" => {
                let mut items = Vec::new();
                for name in rest.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                    let id = catalog
                        .iter()
                        .find(|(_, d)| d.name == name)
                        .map(|(id, _)| id)
                        .or_else(|| {
                            name.parse::<u32>()
                                .ok()
                                .map(ItemId)
                                .filter(|i| i.index() < catalog.len())
                        })
                        .ok_or_else(|| format!("bad target spec: unknown item {name:?}"))?;
                    if !items.contains(&id) {
                        items.push(id);
                    }
                }
                if items.is_empty() {
                    return Err("bad target spec: items: lists no items".into());
                }
                Ok(TargetFilter::Items(items))
            }
            "subtree" => {
                let name = rest.trim();
                let concept = (0..hierarchy.n_concepts() as u32)
                    .map(ConceptId)
                    .find(|c| hierarchy.concept_name(*c) == name)
                    .or_else(|| {
                        name.parse::<u32>()
                            .ok()
                            .map(ConceptId)
                            .filter(|c| c.index() < hierarchy.n_concepts())
                    })
                    .ok_or_else(|| format!("bad target spec: unknown concept {name:?}"))?;
                Ok(TargetFilter::Subtree(concept))
            }
            "codes" => {
                let mut codes = Vec::new();
                for part in rest.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                    let k: u16 = part
                        .parse()
                        .map_err(|_| format!("bad target spec: code {part:?} is not an index"))?;
                    let code = CodeId(k);
                    if !codes.contains(&code) {
                        codes.push(code);
                    }
                }
                if codes.is_empty() {
                    return Err("bad target spec: codes: lists no codes".into());
                }
                Ok(TargetFilter::Codes(codes))
            }
            other => Err(format!(
                "bad target spec: unknown kind {other:?} (expected items, subtree, or codes)"
            )),
        }
    }
}

/// Parse a per-item minimum-profit floor spec: `NAME=FLOOR[,NAME=FLOOR...]`
/// where `NAME` is an item name (or raw id) from `catalog` and `FLOOR` a
/// dollar amount. Returns `(item, floor)` pairs in spec order, one entry
/// per item (later entries overwrite earlier ones).
pub fn parse_item_floors(spec: &str, catalog: &Catalog) -> Result<Vec<(ItemId, f64)>, String> {
    let mut floors: Vec<(ItemId, f64)> = Vec::new();
    for part in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let (name, value) = part
            .split_once('=')
            .ok_or_else(|| format!("bad floor spec {part:?}: expected NAME=FLOOR"))?;
        let name = name.trim();
        let id = catalog
            .iter()
            .find(|(_, d)| d.name == name)
            .map(|(id, _)| id)
            .or_else(|| {
                name.parse::<u32>()
                    .ok()
                    .map(ItemId)
                    .filter(|i| i.index() < catalog.len())
            })
            .ok_or_else(|| format!("bad floor spec: unknown item {name:?}"))?;
        let floor: f64 = value
            .trim()
            .parse()
            .map_err(|_| format!("bad floor spec: {value:?} is not a number"))?;
        match floors.iter_mut().find(|(i, _)| *i == id) {
            Some(slot) => slot.1 = floor,
            None => floors.push((id, floor)),
        }
    }
    if floors.is_empty() {
        return Err("bad floor spec: no NAME=FLOOR entries".into());
    }
    Ok(floors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ItemDef;
    use crate::code::PromotionCode;
    use crate::money::Money;

    fn fixture() -> (Catalog, Hierarchy) {
        let mut cat = Catalog::new();
        let code = PromotionCode::unit(Money::from_cents(500), Money::from_cents(300));
        for name in ["bread", "snack-a", "snack-b"] {
            cat.push(ItemDef {
                name: name.into(),
                codes: vec![code, code],
                is_target: name != "bread",
            });
        }
        let mut h = Hierarchy::flat(3);
        let snacks = h.add_concept("Snacks");
        h.link_item(ItemId(1), snacks).unwrap();
        h.link_item(ItemId(2), snacks).unwrap();
        (cat, h)
    }

    #[test]
    fn parses_each_kind() {
        let (cat, h) = fixture();
        assert_eq!(
            TargetFilter::parse("items:snack-a,snack-b", &cat, &h).unwrap(),
            TargetFilter::Items(vec![ItemId(1), ItemId(2)])
        );
        assert_eq!(
            TargetFilter::parse("items:2", &cat, &h).unwrap(),
            TargetFilter::Items(vec![ItemId(2)])
        );
        assert_eq!(
            TargetFilter::parse("subtree:Snacks", &cat, &h).unwrap(),
            TargetFilter::Subtree(ConceptId(0))
        );
        assert_eq!(
            TargetFilter::parse("codes:0,1", &cat, &h).unwrap(),
            TargetFilter::Codes(vec![CodeId(0), CodeId(1)])
        );
    }

    #[test]
    fn rejects_bad_specs() {
        let (cat, h) = fixture();
        for spec in [
            "heads",
            "items:",
            "items:unknown",
            "subtree:Nope",
            "codes:",
            "codes:x",
            "frobs:1",
        ] {
            assert!(
                TargetFilter::parse(spec, &cat, &h).is_err(),
                "{spec:?} should be rejected"
            );
        }
    }

    #[test]
    fn matches_each_kind() {
        let (_, h) = fixture();
        let items = TargetFilter::Items(vec![ItemId(1)]);
        assert!(items.matches(&h, ItemId(1), CodeId(0)));
        assert!(!items.matches(&h, ItemId(2), CodeId(0)));

        let subtree = TargetFilter::Subtree(ConceptId(0));
        assert!(subtree.matches(&h, ItemId(1), CodeId(1)));
        assert!(subtree.matches(&h, ItemId(2), CodeId(0)));
        assert!(!subtree.matches(&h, ItemId(0), CodeId(0)));

        let codes = TargetFilter::Codes(vec![CodeId(1)]);
        assert!(codes.matches(&h, ItemId(0), CodeId(1)));
        assert!(!codes.matches(&h, ItemId(0), CodeId(0)));
    }

    #[test]
    fn floors_parse_and_override() {
        let (cat, _) = fixture();
        assert_eq!(
            parse_item_floors("snack-a=1.5,snack-b=-2", &cat).unwrap(),
            vec![(ItemId(1), 1.5), (ItemId(2), -2.0)]
        );
        // Later entries overwrite earlier ones.
        assert_eq!(
            parse_item_floors("snack-a=1,snack-a=3", &cat).unwrap(),
            vec![(ItemId(1), 3.0)]
        );
        assert!(parse_item_floors("", &cat).is_err());
        assert!(parse_item_floors("nope=1", &cat).is_err());
        assert!(parse_item_floors("snack-a", &cat).is_err());
        assert!(parse_item_floors("snack-a=zz", &cat).is_err());
    }
}
