//! Promotion codes and the favorability order `≺` (§2).
//!
//! A promotion code carries the *package* price, the seller's cost for the
//! package, and the packing quantity (how many base units the package
//! contains — `4` for a 4-pack). The paper's Example 1: 2%-Milk with codes
//! `($3.2/4-pack, $2)`, `($3.0/4-pack, $1.8)`, `($1.2/pack, $0.5)`,
//! `($1/pack, $0.5)`.
//!
//! **Favorability** (`P ≺ P'`): `P` offers more value for the same or
//! lower price, or a lower price for the same or more value. Equivalently
//! `P` is weakly better on both axes (price ≤, value ≥) and strictly
//! better on at least one. Note `$3.80/2-pack ⊀ $3.50/1-pack`: paying more
//! for unwanted quantity is not favorable — the order is partial.
//! The seller-side `cost` plays no role in favorability.

use crate::money::Money;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A promotion code: package price, package cost, and packing quantity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PromotionCode {
    /// Price of one package.
    pub price: Money,
    /// Seller's cost of one package.
    pub cost: Money,
    /// Base units per package (≥ 1); the "value" axis of favorability.
    pub pack_qty: u32,
}

impl PromotionCode {
    /// A code for a single-unit packing (`pack_qty = 1`).
    pub fn unit(price: Money, cost: Money) -> Self {
        Self {
            price,
            cost,
            pack_qty: 1,
        }
    }

    /// A code with an explicit packing quantity.
    ///
    /// # Panics
    ///
    /// Panics if `pack_qty == 0`.
    pub fn packed(price: Money, cost: Money, pack_qty: u32) -> Self {
        assert!(pack_qty >= 1, "packing quantity must be at least 1");
        Self {
            price,
            cost,
            pack_qty,
        }
    }

    /// Per-package margin `Price(P) − Cost(P)`.
    pub fn margin(&self) -> Money {
        self.price - self.cost
    }

    /// Strict favorability `self ≺ other`: weakly better on both axes
    /// (price ≤, packing value ≥) and strictly better on at least one.
    pub fn more_favorable_than(&self, other: &PromotionCode) -> bool {
        let weakly = self.price <= other.price && self.pack_qty >= other.pack_qty;
        let strictly = self.price < other.price || self.pack_qty > other.pack_qty;
        weakly && strictly
    }

    /// Reflexive favorability `self ⪯ other` on the `(price, value)` axes:
    /// true when `self` would be accepted by anyone who accepted `other`
    /// (MOA assumption). Equal `(price, pack_qty)` counts, regardless of
    /// the seller-side cost.
    pub fn favorable_or_equal(&self, other: &PromotionCode) -> bool {
        self.price <= other.price && self.pack_qty >= other.pack_qty
    }
}

impl fmt::Display for PromotionCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.pack_qty == 1 {
            write!(f, "{} (cost {})", self.price, self.cost)
        } else {
            write!(
                f,
                "{}/{}-pack (cost {})",
                self.price, self.pack_qty, self.cost
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(price_cents: i64, cost_cents: i64, qty: u32) -> PromotionCode {
        PromotionCode::packed(
            Money::from_cents(price_cents),
            Money::from_cents(cost_cents),
            qty,
        )
    }

    #[test]
    fn paper_section2_examples() {
        // "$3.50/2-pack offers a lower price than $3.80/2-pack for the
        // same value" ⇒ more favorable.
        assert!(code(350, 0, 2).more_favorable_than(&code(380, 0, 2)));
        // "$3.50/2-pack offers more value than $3.50/1-pack for the same
        // price" ⇒ more favorable.
        assert!(code(350, 0, 2).more_favorable_than(&code(350, 0, 1)));
        // "$3.80/2-pack is not (always) more favorable than $3.50/pack":
        // more value but *higher* price ⇒ incomparable.
        assert!(!code(380, 0, 2).more_favorable_than(&code(350, 0, 1)));
        assert!(!code(350, 0, 1).more_favorable_than(&code(380, 0, 2)));
    }

    #[test]
    fn strictness() {
        let p = code(100, 50, 1);
        assert!(!p.more_favorable_than(&p));
        assert!(p.favorable_or_equal(&p));
    }

    #[test]
    fn cost_is_irrelevant_to_favorability() {
        // Same price/value, different cost: neither strictly favorable,
        // both reflexively acceptable.
        let a = code(100, 50, 1);
        let b = code(100, 80, 1);
        assert!(!a.more_favorable_than(&b));
        assert!(!b.more_favorable_than(&a));
        assert!(a.favorable_or_equal(&b) && b.favorable_or_equal(&a));
    }

    #[test]
    fn partial_order_properties() {
        // Irreflexive + asymmetric + transitive over a small universe.
        let universe = [
            code(100, 10, 1),
            code(120, 10, 1),
            code(300, 30, 4),
            code(320, 30, 4),
            code(90, 10, 2),
        ];
        for a in &universe {
            assert!(!a.more_favorable_than(a), "irreflexive");
            for b in &universe {
                if a.more_favorable_than(b) {
                    assert!(!b.more_favorable_than(a), "asymmetric");
                }
                for c in &universe {
                    if a.more_favorable_than(b) && b.more_favorable_than(c) {
                        assert!(a.more_favorable_than(c), "transitive");
                    }
                }
            }
        }
    }

    #[test]
    fn margin() {
        assert_eq!(code(320, 200, 4).margin(), Money::from_cents(120));
        assert_eq!(code(100, 150, 1).margin(), Money::from_cents(-50));
    }

    #[test]
    fn display() {
        assert_eq!(code(320, 200, 4).to_string(), "$3.20/4-pack (cost $2.00)");
        assert_eq!(code(100, 50, 1).to_string(), "$1.00 (cost $0.50)");
    }

    #[test]
    #[should_panic]
    fn zero_packing_rejected() {
        let _ = code(100, 50, 0);
    }
}
