//! Error type for dataset construction and validation.

use crate::ids::{CodeId, ConceptId, ItemId};
use std::fmt;

/// Everything that can go wrong when assembling or validating the data
/// model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnError {
    /// A sale references an item id outside the catalog.
    UnknownItem(ItemId),
    /// A sale references a code id the item does not have.
    UnknownCode(ItemId, CodeId),
    /// A hierarchy edge references a concept outside the table.
    UnknownConcept(ConceptId),
    /// The concept hierarchy contains a cycle through the given concept.
    HierarchyCycle(ConceptId),
    /// A transaction's target sale uses a non-target item.
    TargetSaleOnNonTarget(ItemId),
    /// A transaction's non-target sale uses a target item.
    NonTargetSaleOnTarget(ItemId),
    /// A sale has zero quantity.
    ZeroQuantity(ItemId),
    /// An item was declared with no promotion codes.
    NoCodes(ItemId),
    /// The catalog declares no target items.
    NoTargetItems,
    /// The hierarchy's item count disagrees with the catalog's.
    ItemCountMismatch {
        /// Items in the catalog.
        catalog: usize,
        /// Items the hierarchy was built for.
        hierarchy: usize,
    },
    /// Duplicate item name in a builder.
    DuplicateName(String),
    /// A catalog-growth delta hung a new target item below a concept;
    /// target items must be immediate children of `ANY`.
    TargetItemWithParents(ItemId),
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::UnknownItem(i) => write!(f, "unknown {i}"),
            TxnError::UnknownCode(i, c) => write!(f, "{i} has no {c}"),
            TxnError::UnknownConcept(c) => write!(f, "unknown {c}"),
            TxnError::HierarchyCycle(c) => write!(f, "hierarchy cycle through {c}"),
            TxnError::TargetSaleOnNonTarget(i) => {
                write!(f, "target sale uses non-target {i}")
            }
            TxnError::NonTargetSaleOnTarget(i) => {
                write!(f, "non-target sale uses target {i}")
            }
            TxnError::ZeroQuantity(i) => write!(f, "sale of {i} has zero quantity"),
            TxnError::NoCodes(i) => write!(f, "{i} has no promotion codes"),
            TxnError::NoTargetItems => write!(f, "catalog declares no target items"),
            TxnError::ItemCountMismatch { catalog, hierarchy } => write!(
                f,
                "hierarchy covers {hierarchy} items but catalog has {catalog}"
            ),
            TxnError::DuplicateName(n) => write!(f, "duplicate item name {n:?}"),
            TxnError::TargetItemWithParents(i) => write!(
                f,
                "new target {i} must hang directly below ANY (no concept parents)"
            ),
        }
    }
}

impl std::error::Error for TxnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TxnError::UnknownCode(ItemId(3), CodeId(9));
        assert_eq!(e.to_string(), "item#3 has no code#9");
        let e = TxnError::ItemCountMismatch {
            catalog: 5,
            hierarchy: 4,
        };
        assert!(e.to_string().contains('5') && e.to_string().contains('4'));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<TxnError>();
    }
}
