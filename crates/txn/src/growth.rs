//! Catalog growth: append-only deltas that introduce new items, codes,
//! and concepts mid-stream.
//!
//! A [`CatalogDelta`] may only *append*: new items (each with its own
//! promotion codes), new concepts, and links **from** the new items and
//! new concepts to existing or new concepts. It must never mutate an
//! existing item's codes or an existing node's parents — that
//! append-only discipline is what keeps incremental mining byte-exact
//! across growth:
//!
//! * the head universe is "(target item, code) pairs in catalog order",
//!   so appended target items append heads at the *end*, preserving
//!   every existing `HeadId`;
//! * existing items' MOA tables (favorable codes, concept ancestors)
//!   are unchanged, so the generalized-sale extensions of old
//!   transactions — and with them the miner's frozen anchor caches —
//!   stay valid;
//! * new items can only appear in transactions ingested *after* the
//!   delta, so the miner's existing delta-based invalidation already
//!   touches exactly the anchors the new items reach.
//!
//! The wire/log representation ([`encode_stream_record`] /
//! [`decode_stream_record`]) keeps plain transaction batches in the
//! PR-8 byte format (a bare JSON array), so logs written before catalog
//! growth existed replay unchanged; a batch that carries a delta is a
//! JSON object `{"catalog": …, "txns": […]}` and the decoder sniffs the
//! first byte.

use crate::catalog::{Catalog, ItemDef};
use crate::error::TxnError;
use crate::hierarchy::Hierarchy;
use crate::ids::ConceptId;
use crate::sale::Transaction;
use serde::{Deserialize, Serialize};

/// A new item plus where it hangs in the hierarchy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NewItem {
    /// The item definition (name, promotion codes, target flag).
    pub def: ItemDef,
    /// Direct concept parents — ids into the *grown* concept table, so
    /// they may name concepts this same delta introduces. Target items
    /// must leave this empty (they hang directly below `ANY`).
    pub parents: Vec<ConceptId>,
}

/// A new concept plus its direct parents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NewConcept {
    /// Human-readable concept name.
    pub name: String,
    /// Direct concept parents — ids into the grown concept table.
    pub parents: Vec<ConceptId>,
}

/// An append-only catalog/hierarchy extension carried by an ingest
/// batch. Applying it never changes an existing item, code, price, or
/// hierarchy edge — see the module docs for why that restriction is
/// what makes growth compatible with byte-exact incremental refits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CatalogDelta {
    /// Concepts to append to the hierarchy, in id order.
    pub concepts: Vec<NewConcept>,
    /// Items to append to the catalog, in id order.
    pub items: Vec<NewItem>,
}

impl CatalogDelta {
    /// A delta that adds nothing.
    pub fn empty() -> Self {
        CatalogDelta {
            concepts: Vec::new(),
            items: Vec::new(),
        }
    }

    /// True when applying this delta would change nothing.
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty() && self.items.is_empty()
    }

    /// Build the grown catalog and hierarchy without touching the
    /// originals — validation and application in one deterministic
    /// step, so a rejected delta leaves no partial growth behind.
    ///
    /// Checks: every new item has at least one code, new target items
    /// carry no concept parents, every parent link is in range for the
    /// grown tables, and the grown hierarchy is still acyclic.
    pub fn grown(
        &self,
        catalog: &Catalog,
        hierarchy: &Hierarchy,
    ) -> Result<(Catalog, Hierarchy), TxnError> {
        let mut catalog = catalog.clone();
        let mut hierarchy = hierarchy.clone();
        for c in &self.concepts {
            hierarchy.add_concept(c.name.clone());
        }
        // Link pass after the add pass, so a concept may name a later
        // concept in the same delta as its parent.
        let base_concepts = hierarchy.n_concepts() - self.concepts.len();
        for (i, c) in self.concepts.iter().enumerate() {
            let id = ConceptId((base_concepts + i) as u32);
            for &p in &c.parents {
                hierarchy.link_concept(id, p)?;
            }
        }
        hierarchy.grow_items(self.items.len());
        for item in &self.items {
            let id = catalog.push(item.def.clone());
            if item.def.is_target && !item.parents.is_empty() {
                return Err(TxnError::TargetItemWithParents(id));
            }
            for &p in &item.parents {
                hierarchy.link_item(id, p)?;
            }
        }
        catalog.validate()?;
        hierarchy.validate()?;
        Ok((catalog, hierarchy))
    }
}

/// Serialize an ingest batch for the wire and the sales log. A batch
/// without growth stays in the legacy byte format (a bare JSON array of
/// transactions); one with growth becomes `{"catalog": …, "txns": […]}`.
pub fn encode_stream_record(catalog: Option<&CatalogDelta>, txns: &[Transaction]) -> String {
    match catalog {
        None => serde_json::to_string(&txns.to_vec()).expect("transactions serialize"),
        Some(delta) => {
            // The serde shim derive takes no generics or lifetimes, so
            // the record owns its halves; growth records are rare.
            #[derive(Serialize)]
            struct Record {
                catalog: CatalogDelta,
                txns: Vec<Transaction>,
            }
            serde_json::to_string(&Record {
                catalog: delta.clone(),
                txns: txns.to_vec(),
            })
            .expect("stream record serializes")
        }
    }
}

/// Decode a wire/log batch produced by [`encode_stream_record`] (or by
/// a pre-growth writer, which only ever produced the array form).
pub fn decode_stream_record(
    text: &str,
) -> Result<(Option<CatalogDelta>, Vec<Transaction>), String> {
    match text.trim_start().as_bytes().first() {
        Some(b'[') => {
            let txns: Vec<Transaction> = serde_json::from_str(text).map_err(|e| e.to_string())?;
            Ok((None, txns))
        }
        Some(b'{') => {
            #[derive(Deserialize)]
            struct Record {
                catalog: CatalogDelta,
                txns: Vec<Transaction>,
            }
            let rec: Record = serde_json::from_str(text).map_err(|e| e.to_string())?;
            Ok((Some(rec.catalog), rec.txns))
        }
        _ => Err("stream record must be a JSON array of transactions or a \
                  {\"catalog\", \"txns\"} object"
            .to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::PromotionCode;
    use crate::dataset::TransactionSet;
    use crate::ids::{CodeId, ItemId};
    use crate::money::Money;
    use crate::sale::Sale;

    fn base_set() -> TransactionSet {
        let mut c = Catalog::new();
        c.push(ItemDef {
            name: "target".into(),
            codes: vec![PromotionCode::unit(
                Money::from_cents(100),
                Money::from_cents(40),
            )],
            is_target: true,
        });
        c.push(ItemDef {
            name: "trigger".into(),
            codes: vec![PromotionCode::unit(
                Money::from_cents(50),
                Money::from_cents(20),
            )],
            is_target: false,
        });
        let mut h = Hierarchy::flat(2);
        let snacks = h.add_concept("snacks");
        h.link_item(ItemId(1), snacks).unwrap();
        let txn = Transaction::new(
            vec![Sale::new(ItemId(1), CodeId(0), 1)],
            Sale::new(ItemId(0), CodeId(0), 2),
        );
        TransactionSet::new(c, h, vec![txn]).unwrap()
    }

    fn growth() -> CatalogDelta {
        CatalogDelta {
            concepts: vec![NewConcept {
                name: "frozen".into(),
                // Parent is the *existing* concept 0 ("snacks").
                parents: vec![ConceptId(0)],
            }],
            items: vec![
                NewItem {
                    def: ItemDef {
                        name: "new-trigger".into(),
                        codes: vec![PromotionCode::unit(
                            Money::from_cents(80),
                            Money::from_cents(30),
                        )],
                        is_target: false,
                    },
                    // Parent is the concept this same delta introduces.
                    parents: vec![ConceptId(1)],
                },
                NewItem {
                    def: ItemDef {
                        name: "new-target".into(),
                        codes: vec![PromotionCode::unit(
                            Money::from_cents(200),
                            Money::from_cents(90),
                        )],
                        is_target: true,
                    },
                    parents: vec![],
                },
            ],
        }
    }

    #[test]
    fn growth_appends_without_touching_existing_entries() {
        let mut ds = base_set();
        let before_catalog = ds.catalog().clone();
        ds.extend_catalog(&growth()).unwrap();
        assert_eq!(ds.catalog().len(), 4);
        assert_eq!(ds.hierarchy().n_items(), 4);
        assert_eq!(ds.hierarchy().n_concepts(), 2);
        // Existing entries are byte-for-byte what they were.
        for i in 0..before_catalog.len() {
            let id = ItemId(i as u32);
            assert_eq!(
                serde_json::to_string(ds.catalog().item(id)).unwrap(),
                serde_json::to_string(before_catalog.item(id)).unwrap()
            );
        }
        assert_eq!(ds.hierarchy().item_parents(ItemId(0)), &[]);
        assert_eq!(ds.hierarchy().item_parents(ItemId(1)), &[ConceptId(0)]);
        // New entries landed where the delta said.
        assert_eq!(ds.catalog().item(ItemId(2)).name, "new-trigger");
        assert!(ds.catalog().item(ItemId(3)).is_target);
        assert_eq!(ds.hierarchy().item_parents(ItemId(2)), &[ConceptId(1)]);
        assert_eq!(
            ds.hierarchy().concept_parents(ConceptId(1)),
            &[ConceptId(0)]
        );
        // Heads append at the end: target items in catalog order.
        assert_eq!(ds.catalog().target_items(), vec![ItemId(0), ItemId(3)]);
        // Transactions over the new items now validate and append.
        let t = Transaction::new(
            vec![Sale::new(ItemId(2), CodeId(0), 1)],
            Sale::new(ItemId(3), CodeId(0), 1),
        );
        ds.extend_from(&[t]).unwrap();
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn invalid_growth_is_rejected_atomically() {
        let mut ds = base_set();
        // A new item with no codes.
        let mut bad = growth();
        bad.items[0].def.codes.clear();
        assert_eq!(
            ds.extend_catalog(&bad).unwrap_err(),
            TxnError::NoCodes(ItemId(2))
        );
        // A new target item below a concept.
        let mut bad = growth();
        bad.items[1].parents = vec![ConceptId(0)];
        assert_eq!(
            ds.extend_catalog(&bad).unwrap_err(),
            TxnError::TargetItemWithParents(ItemId(3))
        );
        // A parent link out of range for the grown table.
        let mut bad = growth();
        bad.concepts[0].parents = vec![ConceptId(9)];
        assert_eq!(
            ds.extend_catalog(&bad).unwrap_err(),
            TxnError::UnknownConcept(ConceptId(9))
        );
        // Nothing grew across any of the failures.
        assert_eq!(ds.catalog().len(), 2);
        assert_eq!(ds.hierarchy().n_concepts(), 1);
    }

    #[test]
    fn stream_record_codec_round_trips_and_keeps_legacy_bytes() {
        let ds = base_set();
        let txns = ds.transactions().to_vec();
        // No growth ⇒ the exact legacy array bytes.
        let legacy = encode_stream_record(None, &txns);
        assert_eq!(legacy, serde_json::to_string(&txns).unwrap());
        let (delta, back) = decode_stream_record(&legacy).unwrap();
        assert!(delta.is_none());
        assert_eq!(back.len(), 1);
        // Growth ⇒ object form, round-trips both halves.
        let with_growth = encode_stream_record(Some(&growth()), &txns);
        assert!(with_growth.starts_with('{'));
        let (delta, back) = decode_stream_record(&with_growth).unwrap();
        let delta = delta.unwrap();
        assert_eq!(delta.items.len(), 2);
        assert_eq!(delta.concepts.len(), 1);
        assert_eq!(back.len(), 1);
        // Re-encoding the decoded record reproduces the bytes.
        assert_eq!(encode_stream_record(Some(&delta), &back), with_growth);
        // Garbage is a typed error, not a panic.
        assert!(decode_stream_record("42").is_err());
        assert!(decode_stream_record("").is_err());
    }

    #[test]
    fn validate_stream_record_checks_without_applying() {
        let ds = base_set();
        let t_new = Transaction::new(vec![], Sale::new(ItemId(3), CodeId(0), 1));
        // A transaction over a not-yet-known item fails without growth…
        assert_eq!(
            ds.validate_stream_record(None, std::slice::from_ref(&t_new))
                .unwrap_err(),
            TxnError::UnknownItem(ItemId(3))
        );
        // …and passes when the same record carries the growth delta.
        ds.validate_stream_record(Some(&growth()), std::slice::from_ref(&t_new))
            .unwrap();
        // Validation did not grow the live set.
        assert_eq!(ds.catalog().len(), 2);
    }
}
