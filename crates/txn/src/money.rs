//! Fixed-point money.
//!
//! Prices and costs are exact `i64` cent counts; they never round-trip
//! through floats. Profit *measures* (which involve fractional quantities
//! under buying MOA) convert to `f64` dollars at the last moment via
//! [`Money::as_dollars`].

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// An exact amount of money in cents. Supports negative amounts (losses).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Money(i64);

impl Money {
    /// Zero dollars.
    pub const ZERO: Money = Money(0);

    /// From a cent count.
    pub const fn from_cents(cents: i64) -> Self {
        Money(cents)
    }

    /// From whole dollars.
    ///
    /// # Panics
    ///
    /// Panics if `dollars * 100` overflows the cent range — the same
    /// contract as [`Money::from_dollars_f64`]. (The unchecked `* 100`
    /// this replaces wrapped silently in release builds.)
    pub const fn from_dollars(dollars: i64) -> Self {
        match dollars.checked_mul(100) {
            Some(cents) => Money(cents),
            None => panic!("money overflow: dollar amount exceeds the cent range"),
        }
    }

    /// From a float dollar amount, rounded to the nearest cent.
    ///
    /// # Panics
    ///
    /// Panics if `dollars` is not finite or overflows the cent range.
    pub fn from_dollars_f64(dollars: f64) -> Self {
        assert!(dollars.is_finite(), "money must be finite, got {dollars}");
        let cents = (dollars * 100.0).round();
        assert!(
            cents >= i64::MIN as f64 && cents <= i64::MAX as f64,
            "money overflow: {dollars}"
        );
        Money(cents as i64)
    }

    /// The cent count.
    pub const fn cents(self) -> i64 {
        self.0
    }

    /// The amount as `f64` dollars (lossless for |cents| < 2^53).
    pub fn as_dollars(self) -> f64 {
        self.0 as f64 / 100.0
    }

    /// True when this amount is strictly positive.
    pub const fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// True when this amount is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by an integer quantity, checking for overflow.
    pub fn times(self, qty: u32) -> Money {
        Money(
            self.0
                .checked_mul(qty as i64)
                .expect("money multiplication overflow"),
        )
    }

    /// Minimum of two amounts.
    pub fn min(self, other: Money) -> Money {
        Money(self.0.min(other.0))
    }

    /// Maximum of two amounts.
    pub fn max(self, other: Money) -> Money {
        Money(self.0.max(other.0))
    }
}

impl Add for Money {
    type Output = Money;
    fn add(self, rhs: Money) -> Money {
        Money(self.0.checked_add(rhs.0).expect("money addition overflow"))
    }
}

impl AddAssign for Money {
    fn add_assign(&mut self, rhs: Money) {
        *self = *self + rhs;
    }
}

impl Sub for Money {
    type Output = Money;
    fn sub(self, rhs: Money) -> Money {
        Money(
            self.0
                .checked_sub(rhs.0)
                .expect("money subtraction overflow"),
        )
    }
}

impl SubAssign for Money {
    fn sub_assign(&mut self, rhs: Money) {
        *self = *self - rhs;
    }
}

impl Neg for Money {
    type Output = Money;
    fn neg(self) -> Money {
        Money(-self.0)
    }
}

impl Mul<u32> for Money {
    type Output = Money;
    fn mul(self, rhs: u32) -> Money {
        self.times(rhs)
    }
}

impl Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        iter.fold(Money::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let abs = self.0.unsigned_abs();
        write!(f, "{sign}${}.{:02}", abs / 100, abs % 100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Money::from_dollars(3), Money::from_cents(300));
        assert_eq!(Money::from_dollars_f64(3.2), Money::from_cents(320));
        assert_eq!(Money::from_dollars_f64(0.005), Money::from_cents(1)); // round half up
        assert_eq!(Money::from_dollars_f64(-1.25), Money::from_cents(-125));
    }

    #[test]
    fn arithmetic() {
        let a = Money::from_cents(320);
        let b = Money::from_cents(200);
        assert_eq!(a - b, Money::from_cents(120));
        assert_eq!(a + b, Money::from_cents(520));
        assert_eq!((a - b).times(5), Money::from_cents(600));
        assert_eq!(a * 2, Money::from_cents(640));
        assert_eq!(-a, Money::from_cents(-320));
    }

    #[test]
    fn sum_iterator() {
        let total: Money = [1, 2, 3].iter().map(|&d| Money::from_dollars(d)).sum();
        assert_eq!(total, Money::from_dollars(6));
    }

    #[test]
    fn display() {
        assert_eq!(Money::from_cents(320).to_string(), "$3.20");
        assert_eq!(Money::from_cents(5).to_string(), "$0.05");
        assert_eq!(Money::from_cents(-120).to_string(), "-$1.20");
        assert_eq!(Money::ZERO.to_string(), "$0.00");
    }

    #[test]
    fn dollars_round_trip() {
        assert_eq!(Money::from_cents(123).as_dollars(), 1.23);
        assert_eq!(Money::from_dollars_f64(1.23).cents(), 123);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = Money::from_cents(100);
        let b = Money::from_cents(250);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert!(b.is_positive());
        assert!(Money::ZERO.is_zero());
    }

    #[test]
    #[should_panic]
    fn multiplication_overflow_panics() {
        let _ = Money::from_cents(i64::MAX).times(2);
    }

    /// `from_dollars` must panic on overflow, not wrap: before the
    /// `checked_mul` fix, `i64::MAX / 2 * 100` wrapped silently in
    /// release builds and produced a garbage (negative) amount.
    #[test]
    #[should_panic(expected = "money overflow")]
    fn from_dollars_overflow_panics() {
        let _ = Money::from_dollars(i64::MAX / 2);
    }

    #[test]
    fn from_dollars_handles_extremes_within_range() {
        assert_eq!(
            Money::from_dollars(i64::MAX / 100).cents(),
            i64::MAX / 100 * 100
        );
        assert_eq!(
            Money::from_dollars(i64::MIN / 100).cents(),
            i64::MIN / 100 * 100
        );
        assert_eq!(Money::from_dollars(-3), Money::from_cents(-300));
    }

    #[test]
    #[should_panic]
    fn rejects_nan_dollars() {
        let _ = Money::from_dollars_f64(f64::NAN);
    }
}
