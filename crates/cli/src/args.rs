//! Minimal flag/value argument parsing.

use std::collections::HashMap;

/// CLI failure modes.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation — print usage, exit 1.
    Usage(String),
    /// Valid invocation that failed at runtime (I/O, bad data).
    Runtime(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Runtime(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Parsed `--flag value` / `--switch` arguments.
#[derive(Debug, Default)]
pub struct ArgMap {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

/// Boolean switches (no value follows).
const SWITCHES: [&str; 6] = [
    "--no-moa",
    "--conf",
    "--no-prune",
    "--buying",
    "--all",
    "--no-compact",
];

impl ArgMap {
    /// Parse a flat argument list.
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut map = ArgMap::default();
        let mut i = 0;
        while i < args.len() {
            let flag = &args[i];
            if !flag.starts_with("--") {
                return Err(CliError::Usage(format!("unexpected argument {flag:?}")));
            }
            if SWITCHES.contains(&flag.as_str()) {
                if map.switches.iter().any(|s| s == flag) {
                    return Err(CliError::Usage(format!("{flag} given more than once")));
                }
                map.switches.push(flag.clone());
            } else {
                i += 1;
                let value = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))?;
                // A silently-winning later duplicate hides typos in long
                // invocations (`--seed 1 … --seed 2`); reject instead.
                if map.values.insert(flag.clone(), value.clone()).is_some() {
                    return Err(CliError::Usage(format!("{flag} given more than once")));
                }
            }
            i += 1;
        }
        Ok(map)
    }

    /// A required string value.
    pub fn require(&self, flag: &str) -> Result<&str, CliError> {
        self.values
            .get(flag)
            .map(String::as_str)
            .ok_or_else(|| CliError::Usage(format!("missing required {flag}")))
    }

    /// An optional string value.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.values.get(flag).map(String::as_str)
    }

    /// An optional parsed value with a default.
    pub fn get_or<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, CliError> {
        match self.values.get(flag) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("{flag}: cannot parse {v:?}"))),
        }
    }

    /// Is a boolean switch present?
    pub fn switch(&self, flag: &str) -> bool {
        self.switches.iter().any(|s| s == flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_values_and_switches() {
        let a = ArgMap::parse(&v(&["--out", "x.json", "--no-moa", "--txns", "100"])).unwrap();
        assert_eq!(a.require("--out").unwrap(), "x.json");
        assert!(a.switch("--no-moa"));
        assert!(!a.switch("--conf"));
        assert_eq!(a.get_or("--txns", 0usize).unwrap(), 100);
        assert_eq!(a.get_or("--seed", 7u64).unwrap(), 7);
    }

    #[test]
    fn errors() {
        assert!(ArgMap::parse(&v(&["positional"])).is_err());
        assert!(ArgMap::parse(&v(&["--out"])).is_err());
        let a = ArgMap::parse(&v(&["--txns", "abc"])).unwrap();
        assert!(a.get_or("--txns", 0usize).is_err());
        assert!(a.require("--missing").is_err());
    }

    #[test]
    fn duplicate_flags_are_rejected_not_overwritten() {
        let err = ArgMap::parse(&v(&["--seed", "1", "--txns", "5", "--seed", "2"])).unwrap_err();
        let CliError::Usage(msg) = err else {
            panic!("expected a usage error");
        };
        assert!(msg.contains("--seed"), "{msg}");
        assert!(msg.contains("more than once"), "{msg}");
        // Repeated switches are rejected too.
        assert!(ArgMap::parse(&v(&["--all", "--all"])).is_err());
        // Distinct flags still parse.
        assert!(ArgMap::parse(&v(&["--seed", "1", "--txns", "5"])).is_ok());
    }
}
