//! The CLI subcommands.

use crate::args::{ArgMap, CliError};
use pm_baselines::MostProfitableItem;
use pm_datagen::DatasetConfig;
use pm_eval::runner::{run_sweep, EvalConfig};
use pm_rules::{MinerConfig, MoaMode, ProfitMode, PrunePolicy, RuleMiner, Support, TidPolicy};
use pm_store::log::SalesLog;
use pm_txn::{
    decode_stream_record, encode_stream_record, parse_item_floors, Catalog, CatalogDelta,
    Hierarchy, ItemId, QuantityModel, Sale, TargetFilter, Transaction, TransactionSet,
};
use profit_core::{
    Checkpoint, CutConfig, Matcher, ProfitMiner, Recommendation, Recommender, RuleModel,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn read(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| CliError::Runtime(format!("{path}: {e}")))
}

/// All CLI file output goes through the crash-safe writer: a kill or
/// power cut mid-command leaves either the old file or the new one,
/// never a truncated hybrid.
fn write(path: &str, contents: &str) -> Result<(), CliError> {
    pm_store::write_atomic_str(path, contents).map_err(|e| CliError::Runtime(e.to_string()))
}

fn load_data(args: &ArgMap) -> Result<TransactionSet, CliError> {
    let path = args.require("--data")?;
    TransactionSet::from_json(&read(path)?).map_err(|e| CliError::Runtime(format!("{path}: {e}")))
}

/// `--metrics <path>`: dump the `pm-obs` registry as JSON once the
/// command body has run. The dump is observation-only — emitting it can
/// never change a command's primary output or any written model bytes.
fn dump_metrics(args: &ArgMap) -> Result<(), CliError> {
    if let Some(path) = args.get("--metrics") {
        // POSIX text files end in exactly one newline; `jq`/`cat` users
        // expect it regardless of how the registry renders its dump.
        let json = pm_obs::registry().dump_json();
        write(path, &format!("{}\n", json.trim_end()))?;
        pm_obs::info!("cli.metrics_written", path = path);
    }
    Ok(())
}

fn load_model(args: &ArgMap) -> Result<RuleModel, CliError> {
    let path = args.require("--model")?;
    // The store validates the envelope (magic, version, length, CRC)
    // before any deserialization; legacy raw-JSON model files still load.
    pm_serve::load_model(path).map_err(|e| match e {
        pm_serve::ServeError::Store(se @ pm_store::StoreError::Io { .. }) => {
            CliError::Runtime(se.to_string())
        }
        pm_serve::ServeError::Store(se) => CliError::Runtime(format!("{path}: {se}")),
        other => CliError::Runtime(other.to_string()),
    })
}

/// `--threads N`: worker threads (0 = all cores, 1 = sequential). The
/// result is bit-identical at every setting.
fn threads(args: &ArgMap) -> Result<usize, CliError> {
    args.get_or("--threads", 0usize)
}

/// `--tidset auto|dense|adaptive|sparse`: the miner's tidset
/// representation policy (default `auto`, which honors `PM_TIDSET`).
/// Mined models are byte-identical at every setting.
fn tidset(args: &ArgMap) -> Result<TidPolicy, CliError> {
    match args.get("--tidset") {
        None | Some("auto") => Ok(TidPolicy::Auto),
        Some("dense") => Ok(TidPolicy::Dense),
        Some("adaptive") => Ok(TidPolicy::Adaptive),
        Some("sparse") => Ok(TidPolicy::Sparse),
        Some(other) => Err(CliError::Usage(format!(
            "--tidset must be auto, dense, adaptive, or sparse, got {other:?}"
        ))),
    }
}

/// `--prune auto|off|upper`: the miner's profit upper-bound pruning
/// policy (default `auto`, which honors `PM_PRUNE`). Mined models are
/// byte-identical at every setting — pruning only skips DFS subtrees
/// that provably emit nothing.
fn prune(args: &ArgMap) -> Result<PrunePolicy, CliError> {
    match args.get("--prune") {
        None | Some("auto") => Ok(PrunePolicy::Auto),
        Some("off") => Ok(PrunePolicy::Off),
        Some("upper") => Ok(PrunePolicy::Upper),
        Some(other) => Err(CliError::Usage(format!(
            "--prune must be auto, off, or upper, got {other:?}"
        ))),
    }
}

/// `--target items:A,B | subtree:CONCEPT | codes:0,1`: restrict mined
/// rule heads (and recommendations) to the admitted `(item, code)` pairs.
/// Resolved against the catalog/hierarchy the command operates on.
fn target_filter(
    args: &ArgMap,
    catalog: &Catalog,
    hierarchy: &Hierarchy,
) -> Result<Option<TargetFilter>, CliError> {
    match args.get("--target") {
        None => Ok(None),
        Some(spec) => TargetFilter::parse(spec, catalog, hierarchy)
            .map(Some)
            .map_err(CliError::Usage),
    }
}

/// `--min-profit-per-item ITEM=F,...`: per-item minimum rule-profit
/// floors; items without an entry fall back to the scalar `--min-profit`.
fn item_floors(args: &ArgMap, catalog: &Catalog) -> Result<Vec<(ItemId, f64)>, CliError> {
    match args.get("--min-profit-per-item") {
        None => Ok(Vec::new()),
        Some(spec) => parse_item_floors(spec, catalog).map_err(CliError::Usage),
    }
}

fn miner_config(args: &ArgMap) -> Result<MinerConfig, CliError> {
    let minsup: f64 = args.get_or("--minsup", 0.001)?;
    if !(0.0..=1.0).contains(&minsup) || minsup == 0.0 {
        return Err(CliError::Usage("--minsup must be in (0, 1]".into()));
    }
    Ok(MinerConfig {
        min_support: Support::Fraction(minsup),
        max_body_len: args.get_or("--max-body", 3usize)?,
        moa: if args.switch("--no-moa") {
            MoaMode::Disabled
        } else {
            MoaMode::Enabled
        },
        quantity: if args.switch("--buying") {
            QuantityModel::Buying
        } else {
            QuantityModel::Saving
        },
        min_confidence: match args.get("--min-conf") {
            None => Some(0.5),
            Some(v) => {
                let f: f64 = v
                    .parse()
                    .map_err(|_| CliError::Usage("--min-conf: bad number".into()))?;
                (f > 0.0).then_some(f)
            }
        },
        min_rule_profit: match args.get("--min-profit") {
            None => None,
            Some(v) => {
                let f: f64 = v
                    .parse()
                    .map_err(|_| CliError::Usage("--min-profit: bad number".into()))?;
                (f > 0.0).then_some(f)
            }
        },
        prune_default_dominated: true,
    })
}

/// `gen`: write a synthetic dataset.
pub fn gen(args: &ArgMap) -> Result<String, CliError> {
    let out = args.require("--out")?;
    let dataset = args.get("--dataset").unwrap_or("i");
    let mut cfg = match dataset {
        "i" | "I" => DatasetConfig::dataset_i(),
        "ii" | "II" => DatasetConfig::dataset_ii(),
        other => {
            return Err(CliError::Usage(format!(
                "--dataset must be i or ii, got {other:?}"
            )))
        }
    };
    let txns: usize = args.get_or("--txns", 10_000usize)?;
    let items: usize = args.get_or("--items", 300usize)?;
    if txns == 0 || items == 0 {
        return Err(CliError::Usage("--txns and --items must be ≥ 1".into()));
    }
    cfg = cfg.with_transactions(txns).with_items(items);
    cfg.quest.n_patterns = (cfg.quest.n_transactions / 50).clamp(20, 2000);
    let seed: u64 = args.get_or("--seed", 2002u64)?;
    let data = cfg.generate(&mut StdRng::seed_from_u64(seed));
    write(out, &data.to_json())?;
    Ok(format!(
        "wrote {} — {} transactions, {} items ({} targets), recorded profit {}",
        out,
        data.len(),
        data.catalog().len(),
        data.catalog().target_items().len(),
        data.total_recorded_profit()
    ))
}

/// The full mining pipeline a `fit` (or a streaming `serve`) runs,
/// assembled from the shared flag set. The dataset is needed to resolve
/// `--target` and `--min-profit-per-item` names against its catalog.
fn build_pipeline(args: &ArgMap, data: &TransactionSet) -> Result<ProfitMiner, CliError> {
    let cut = CutConfig {
        profit_mode: if args.switch("--conf") {
            ProfitMode::Confidence
        } else {
            ProfitMode::Profit
        },
        prune: !args.switch("--no-prune"),
        ..CutConfig::default()
    };
    Ok(ProfitMiner::new(miner_config(args)?)
        .with_cut(cut)
        .with_threads(threads(args)?)
        .with_tidset(tidset(args)?)
        .with_prune(prune(args)?)
        .with_target(target_filter(args, data.catalog(), data.hierarchy())?)
        .with_item_floors(item_floors(args, data.catalog())?))
}

/// Decode one batch file: a JSON array of [`Transaction`]s, exactly
/// what `ingest --batch` accepts.
fn decode_batch(payload: &[u8]) -> Result<Vec<Transaction>, String> {
    let text = std::str::from_utf8(payload).map_err(|e| e.to_string())?;
    serde_json::from_str(text).map_err(|e| e.to_string())
}

/// Decode one sales-log record: either a legacy bare transaction array
/// or an object record carrying a catalog delta alongside the batch.
fn decode_record(payload: &[u8]) -> Result<(Option<CatalogDelta>, Vec<Transaction>), String> {
    let text = std::str::from_utf8(payload).map_err(|e| e.to_string())?;
    decode_stream_record(text)
}

/// Replay every retained log record onto `data`, growing the catalog
/// where a record carries a delta. Record indices in errors are
/// absolute stream positions (`first_abs` = the log's compaction base).
fn replay_log(
    data: &mut TransactionSet,
    records: &[Vec<u8>],
    first_abs: u64,
    log_path: &str,
) -> Result<(), CliError> {
    for (i, payload) in records.iter().enumerate() {
        let abs = first_abs + i as u64;
        let (delta, batch) = decode_record(payload)
            .map_err(|e| CliError::Runtime(format!("{log_path}: record {abs}: {e}")))?;
        data.apply_stream_record(delta.as_ref(), &batch)
            .map_err(|e| CliError::Runtime(format!("{log_path}: record {abs}: {e}")))?;
    }
    Ok(())
}

/// `fit`: train and save a recommender.
///
/// With `--log`, the cold fit on `--data` is followed by one
/// *incremental* update per sales-log record — the delta-refit path.
/// The written model is byte-identical to a cold fit on the
/// concatenated stream.
pub fn fit(args: &ArgMap) -> Result<String, CliError> {
    let mut data = load_data(args)?;
    if data.is_empty() {
        return Err(CliError::Runtime(
            "dataset is empty — nothing to fit".into(),
        ));
    }
    let out = args.require("--out")?;
    let pipeline = build_pipeline(args, &data)?;
    let (model, replayed) = match args.get("--log") {
        None => (pipeline.fit(&data), 0usize),
        Some(log_path) => {
            let (_log, recovery) = SalesLog::open(log_path)
                .map_err(|e| CliError::Runtime(format!("{log_path}: {e}")))?;
            if recovery.base != 0 {
                return Err(CliError::Runtime(format!(
                    "{log_path}: log was compacted to base {} — records before the base \
                     live only in its checkpoint; use `checkpoint --out` to refit from it",
                    recovery.base
                )));
            }
            let mut inc = pipeline.into_incremental();
            let mut model = inc.fit(&data);
            for (i, payload) in recovery.records.iter().enumerate() {
                let abs = recovery.base + i as u64;
                let (delta, batch) = decode_record(payload)
                    .map_err(|e| CliError::Runtime(format!("{log_path}: record {abs}: {e}")))?;
                if batch.is_empty() && delta.as_ref().is_none_or(|d| d.is_empty()) {
                    continue;
                }
                data.apply_stream_record(delta.as_ref(), &batch)
                    .map_err(|e| CliError::Runtime(format!("{log_path}: record {abs}: {e}")))?;
                model = inc.update(&data);
            }
            (model, recovery.records.len())
        }
    };
    let stats = *model.stats();
    let payload =
        serde_json::to_string(&model.save()).map_err(|e| CliError::Runtime(e.to_string()))?;
    // Models are written sealed: a checksummed, versioned envelope over
    // the JSON payload, atomically renamed into place. Truncated or
    // bit-flipped files are rejected at load instead of deserializing
    // into a silently-wrong recommender.
    pm_store::save_sealed(out, payload.as_bytes()).map_err(|e| CliError::Runtime(e.to_string()))?;
    dump_metrics(args)?;
    let replay_note = if args.get("--log").is_some() {
        format!(
            "; replayed {replayed} log record{} into {} transactions",
            if replayed == 1 { "" } else { "s" },
            data.len()
        )
    } else {
        String::new()
    };
    Ok(format!(
        "wrote {} — {} ({} rules; mined {}, after dominance {}, projected profit {:.2}{})",
        out,
        model.name(),
        stats.after_cut,
        stats.mined_rules,
        stats.after_dominance,
        stats.projected_profit,
        replay_note
    ))
}

/// `ingest`: validate a batch of sales transactions against the base
/// dataset plus everything already in the log, then append it to the
/// crash-safe sales log as one record. `--catalog-delta` attaches an
/// append-only catalog/hierarchy extension to the same record, so new
/// items become part of the stream atomically with their first sales.
///
/// The append is fsynced before the command reports success; a torn
/// tail left by a crash mid-append is truncated away (and reported)
/// on the next open. The batch file is a JSON array of transactions —
/// exactly what `split --tail` writes.
pub fn ingest(args: &ArgMap) -> Result<String, CliError> {
    let log_path = args.require("--log")?;
    let batch_path = args.require("--batch")?;
    let mut data = load_data(args)?;
    let (log, recovery) =
        SalesLog::open(log_path).map_err(|e| CliError::Runtime(format!("{log_path}: {e}")))?;
    if recovery.base != 0 {
        return Err(CliError::Runtime(format!(
            "{log_path}: log was compacted to base {} — only the serving daemon (which \
             holds the checkpointed stream) can validate ingests against it",
            recovery.base
        )));
    }
    // Replay what the log already holds so the new batch is validated at
    // its actual stream position, not against the base dataset alone.
    replay_log(&mut data, &recovery.records, recovery.base, log_path)?;
    let batch: Vec<Transaction> = decode_batch(read(batch_path)?.as_bytes())
        .map_err(|e| CliError::Runtime(format!("{batch_path}: {e}")))?;
    let delta: Option<CatalogDelta> =
        match args.get("--catalog-delta") {
            None => None,
            Some(p) => Some(serde_json::from_str(&read(p)?).map_err(|e| {
                CliError::Runtime(format!("{p}: catalog delta does not parse: {e}"))
            })?),
        };
    if batch.is_empty() && delta.as_ref().is_none_or(|d| d.is_empty()) {
        return Err(CliError::Runtime(format!(
            "{batch_path}: batch is empty — nothing to ingest"
        )));
    }
    data.apply_stream_record(delta.as_ref(), &batch)
        .map_err(|e| CliError::Runtime(format!("{batch_path}: {e}")))?;
    // Append the canonical re-serialization of the *validated* record, so
    // replay parses exactly what was checked here. Delta-less batches
    // keep the legacy bare-array bytes.
    let payload = encode_stream_record(delta.as_ref(), &batch);
    log.append(payload.as_bytes())
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    let torn = if recovery.truncated_bytes > 0 {
        format!(
            "; recovered a torn tail of {} bytes",
            recovery.truncated_bytes
        )
    } else {
        String::new()
    };
    let grown = match &delta {
        Some(d) if !d.is_empty() => format!(
            "; grew the catalog by {} items and {} concepts",
            d.items.len(),
            d.concepts.len()
        ),
        _ => String::new(),
    };
    Ok(format!(
        "appended {} transactions to {} as record {} (stream now {} transactions{}{})",
        batch.len(),
        log_path,
        recovery.records.len(),
        data.len(),
        grown,
        torn
    ))
}

/// `checkpoint`: seal the whole streaming state — data, model, warm
/// miner caches, and log position — into an atomic `PMCK` envelope,
/// then compact the sales log behind it (unless `--no-compact`).
///
/// When `--out` already holds a checkpoint, the state is *resumed* from
/// it and only the log tail is replayed; otherwise the stream is rebuilt
/// by a cold fit on `--data` plus a full log replay. Either way the
/// sealed model is byte-identical to a cold fit on the whole stream.
pub fn checkpoint(args: &ArgMap) -> Result<String, CliError> {
    let log_path = args.require("--log")?;
    let out = args.require("--out")?;
    let base = load_data(args)?;
    if base.is_empty() {
        return Err(CliError::Runtime(
            "dataset is empty — nothing to checkpoint".into(),
        ));
    }
    let pipeline = build_pipeline(args, &base)?;
    let (log, recovery) =
        SalesLog::open(log_path).map_err(|e| CliError::Runtime(format!("{log_path}: {e}")))?;
    let (mut data, mut inc, skip, how) = if std::path::Path::new(out).exists() {
        let bytes = pm_store::checkpoint::load(out)
            .map_err(|e| CliError::Runtime(format!("{out}: {e}")))?;
        let ck =
            Checkpoint::decode(&bytes).map_err(|e| CliError::Runtime(format!("{out}: {e}")))?;
        let skip = pm_store::checkpoint::plan_replay(
            ck.stream_pos,
            recovery.base,
            recovery.records.len() as u64,
        )
        .map_err(|e| CliError::Runtime(e.to_string()))?;
        let (data, inc, _model) = ck
            .resume(pipeline)
            .map_err(|e| CliError::Runtime(format!("{out}: {e}")))?;
        (data, inc, skip, "resumed from the existing checkpoint")
    } else {
        if recovery.base != 0 {
            return Err(CliError::Runtime(format!(
                "{log_path}: log was compacted to base {} but {out} does not exist — \
                 the records before the base are gone, the stream cannot be rebuilt",
                recovery.base
            )));
        }
        let mut inc = pipeline.into_incremental();
        let data = base;
        inc.fit(&data);
        (data, inc, 0, "cold-fitted the base dataset")
    };
    let first_abs = recovery.base + skip as u64;
    let tail = &recovery.records[skip..];
    replay_log(&mut data, tail, first_abs, log_path)?;
    // One update brings model and caches to the full stream; with an
    // empty tail it just re-assembles from the warm caches.
    let model = inc.update(&data);
    let miner = inc
        .snapshot()
        .ok_or_else(|| CliError::Runtime("the miner has no fitted state to checkpoint".into()))?;
    let stream_pos = recovery.base + recovery.records.len() as u64;
    let ck = Checkpoint {
        stream_pos,
        data_json: data.to_json(),
        model: model.save(),
        miner,
    };
    pm_store::checkpoint::save(out, &ck.encode())
        .map_err(|e| CliError::Runtime(format!("{out}: {e}")))?;
    let compacted = if args.switch("--no-compact") {
        "; log left uncompacted".to_string()
    } else {
        let c = log
            .compact_to(stream_pos)
            .map_err(|e| CliError::Runtime(format!("{log_path}: {e}")))?;
        format!(
            "; compacted the log (dropped {} records, retained {})",
            c.dropped, c.retained
        )
    };
    Ok(format!(
        "wrote checkpoint {out} at stream position {stream_pos} — {} transactions, {} rules \
         ({how}, replayed {} tail records{compacted})",
        data.len(),
        model.rules().len(),
        tail.len(),
    ))
}

/// `split`: cut a dataset at `--at` into a head *dataset* (catalog +
/// first N transactions, loadable by `fit --data`) and a tail *batch*
/// (a bare JSON array of the remaining transactions, ready for
/// `ingest --batch`).
pub fn split(args: &ArgMap) -> Result<String, CliError> {
    let data = load_data(args)?;
    let head_path = args.require("--head")?;
    let tail_path = args.require("--tail")?;
    let at: usize = args
        .require("--at")?
        .parse()
        .map_err(|_| CliError::Usage("--at: bad number".into()))?;
    if at == 0 || at >= data.len() {
        return Err(CliError::Usage(format!(
            "--at must split {} transactions into two non-empty parts, got {at}",
            data.len()
        )));
    }
    let head_indices: Vec<usize> = (0..at).collect();
    write(head_path, &data.subset(&head_indices).to_json())?;
    let tail = &data.transactions()[at..];
    let tail_json =
        serde_json::to_string_pretty(tail).map_err(|e| CliError::Runtime(e.to_string()))?;
    write(tail_path, &tail_json)?;
    Ok(format!(
        "split {} transactions at {at}: head dataset {} ({at} transactions), \
         tail batch {} ({} transactions)",
        data.len(),
        head_path,
        tail_path,
        tail.len()
    ))
}

/// `recommend`: recommend for one dataset transaction's customer, or —
/// with `--all` — serve every customer through the indexed [`Matcher`]
/// and print a per-`(item, code)` summary.
pub fn recommend(args: &ArgMap) -> Result<String, CliError> {
    let data = load_data(args)?;
    let model = load_model(args)?;
    let out = if args.switch("--all") {
        recommend_all(&data, &model)?
    } else {
        recommend_one(&data, &model, args)?
    };
    dump_metrics(args)?;
    Ok(out)
}

/// Render one recommendation with its rule trace. When the model cannot
/// attach a rule index the line degrades to a traceless form and the
/// event is counted — the old `rule_index.expect("rule-based model")`
/// aborted the whole command instead.
pub(crate) fn render_recommendation(model: &RuleModel, rec: &Recommendation) -> String {
    let catalog = model.moa().catalog();
    let mut s = format!(
        "recommend {} at {}  [expected profit {:.4}, confidence {:.0}%]\n",
        catalog.item(rec.item).name,
        rec.promotion,
        rec.expected_profit,
        rec.confidence * 100.0,
    );
    match rec.rule_index {
        Some(idx) if idx < model.rules().len() => {
            s.push_str(&format!("  via {}\n", model.explain(idx)));
        }
        _ => {
            pm_obs::counter("cli.missing_rule_trace").inc();
            pm_obs::error!("cli.missing_rule_trace", item = catalog.item(rec.item).name);
            s.push_str("  (no rule trace available)\n");
        }
    }
    s
}

fn recommend_one(
    data: &TransactionSet,
    model: &RuleModel,
    args: &ArgMap,
) -> Result<String, CliError> {
    let txn: usize = args.get_or("--txn", 0usize)?;
    let k: usize = args.get_or("--top", 1usize)?;
    let t = data
        .transactions()
        .get(txn)
        .ok_or_else(|| CliError::Runtime(format!("transaction {txn} out of range")))?;
    let customer: &[Sale] = t.non_target_sales();
    let moa = model.moa();
    let target = target_filter(args, moa.catalog(), moa.hierarchy())?;
    let recs = match &target {
        None => model.recommend_top_k(customer, k.max(1)),
        Some(t) => model.recommend_top_k_where(customer, k.max(1), t),
    };
    let mut out = format!(
        "customer of transaction {txn} ({} non-target sales):\n",
        customer.len()
    );
    if recs.is_empty() {
        out.push_str("no recommendation — the target admits no matching rule head\n");
    }
    for rec in recs {
        out.push_str(&render_recommendation(model, &rec));
    }
    Ok(out)
}

/// `assort`: mine `--data` with the usual fit flags and pick the top-`--n`
/// `(item, code)` assortment maximizing joint recommendation profit over
/// the training customers (overlap-aware greedy; see `profit_core::assort`).
pub fn assort(args: &ArgMap) -> Result<String, CliError> {
    let data = load_data(args)?;
    if data.is_empty() {
        return Err(CliError::Runtime(
            "dataset is empty — nothing to assort".into(),
        ));
    }
    let n: usize = args.get_or("--n", 3usize)?;
    if n == 0 {
        return Err(CliError::Usage("--n must be ≥ 1".into()));
    }
    let mode = if args.switch("--conf") {
        ProfitMode::Confidence
    } else {
        ProfitMode::Profit
    };
    let miner = RuleMiner::new(miner_config(args)?)
        .with_threads(threads(args)?)
        .with_tidset(tidset(args)?)
        .with_prune(prune(args)?)
        .with_target(target_filter(args, data.catalog(), data.hierarchy())?)
        .with_item_floors(item_floors(args, data.catalog())?);
    let mined = miner.mine(&data);
    let assortment = profit_core::assort_greedy(&mined, n, mode);
    let catalog = data.catalog();
    let mut out = format!(
        "top-{} assortment over {} customers (joint expected profit {:.2}):\n",
        assortment.picks.len(),
        data.len(),
        assortment.expected_profit,
    );
    for (i, &(item, code)) in assortment.picks.iter().enumerate() {
        out.push_str(&format!(
            "{:4}. {} at {}\n",
            i + 1,
            catalog.item(item).name,
            catalog.code(item, code),
        ));
    }
    dump_metrics(args)?;
    Ok(out)
}

/// Batch serving: one indexed-matcher pass over every transaction's
/// customer, aggregated by recommended `(item, code)` pair. Per-customer
/// cost is O(postings touched), not O(total rules), so this is the
/// reference serving loop for large datasets. Output order is
/// deterministic (catalog order of the pairs).
fn recommend_all(data: &TransactionSet, model: &RuleModel) -> Result<String, CliError> {
    let matcher = Matcher::new(model);
    let catalog = model.moa().catalog();
    // (item, code) → (customers served, Σ expected profit).
    let mut summary: std::collections::BTreeMap<(pm_txn::ItemId, pm_txn::CodeId), (u64, f64)> =
        std::collections::BTreeMap::new();
    for t in data.transactions() {
        let rec = matcher.recommend(t.non_target_sales());
        let e = summary.entry((rec.item, rec.code)).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += rec.expected_profit;
    }
    let mut out = format!(
        "served {} customers over {} rules (indexed matcher):\n",
        data.len(),
        model.rules().len()
    );
    for (&(item, code), &(count, profit)) in &summary {
        out.push_str(&format!(
            "{:>8} × {} at {}  [expected profit {:.2}]\n",
            count,
            catalog.item(item).name,
            catalog.code(item, code),
            profit,
        ));
    }
    // Per-request serving latency from the matcher's histogram (the
    // process-lifetime distribution; for a CLI run, this batch).
    let lat = pm_obs::latency("serve.recommend_ns");
    if lat.count() > 0 {
        out.push_str(&format!(
            "serving latency: p50 {:.1}µs  p95 {:.1}µs  p99 {:.1}µs  ({} recommendations timed)\n",
            lat.quantile_ns(0.50) / 1e3,
            lat.quantile_ns(0.95) / 1e3,
            lat.quantile_ns(0.99) / 1e3,
            lat.count(),
        ));
    }
    Ok(out)
}

/// `rules`: print a model's rules.
pub fn rules(args: &ArgMap) -> Result<String, CliError> {
    let model = load_model(args)?;
    let top: usize = args.get_or("--top", usize::MAX)?;
    let mut out = format!("{} — {} rules\n", model.name(), model.rules().len());
    for i in 0..model.rules().len().min(top) {
        out.push_str(&format!("{:4}. {}\n", i + 1, model.explain(i)));
    }
    Ok(out)
}

/// `eval`: cross-validated comparison on a dataset.
pub fn eval(args: &ArgMap) -> Result<String, CliError> {
    let data = load_data(args)?;
    if data.is_empty() {
        return Err(CliError::Runtime(
            "dataset is empty — nothing to evaluate".into(),
        ));
    }
    let minsup: f64 = args.get_or("--minsup", 0.002)?;
    let cfg = EvalConfig {
        n_folds: args.get_or("--folds", 5usize)?,
        seed: args.get_or("--seed", 2002u64)?,
        sweep: vec![minsup],
        max_body_len: args.get_or("--max-body", 3usize)?,
        quantity: if args.switch("--buying") {
            QuantityModel::Buying
        } else {
            QuantityModel::Saving
        },
        threads: threads(args)?,
        ..EvalConfig::default()
    };
    let report = run_sweep(&data, &cfg);
    let mut out = report
        .gain_table(&format!("gain (minsup {:.3}%)", minsup * 100.0))
        .render();
    out.push('\n');
    out.push_str(&report.hit_rate_table("hit rate").render());
    out.push('\n');
    out.push_str(&report.rules_table("rules").render());
    dump_metrics(args)?;
    Ok(out)
}

/// `import`: build a dataset from catalog + sales CSVs.
pub fn import(args: &ArgMap) -> Result<String, CliError> {
    let catalog_csv = read(args.require("--catalog")?)?;
    let sales_csv = read(args.require("--sales")?)?;
    let out = args.require("--out")?;
    // CsvError names its file role itself ("catalog line N: …").
    let (catalog, names) =
        pm_txn::csv::parse_catalog(&catalog_csv).map_err(|e| CliError::Runtime(e.to_string()))?;
    let data = pm_txn::csv::parse_sales(&sales_csv, catalog, &names)
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    write(out, &data.to_json())?;
    Ok(format!(
        "wrote {} — {} transactions over {} items",
        out,
        data.len(),
        data.catalog().len()
    ))
}

/// `export`: write a dataset back to catalog + sales CSVs.
pub fn export(args: &ArgMap) -> Result<String, CliError> {
    let data = load_data(args)?;
    let catalog_path = args.require("--catalog")?;
    let sales_path = args.require("--sales")?;
    let (cat_csv, sales_csv) = pm_txn::csv::to_csv(&data);
    write(catalog_path, &cat_csv)?;
    write(sales_path, &sales_csv)?;
    Ok(format!("wrote {catalog_path} and {sales_path}"))
}

/// `serve`: run the fault-tolerant recommendation daemon until a client
/// sends `{"op":"shutdown"}`. Blocks; the returned string is the final
/// serving summary.
///
/// With `--data` and `--log` the daemon starts in streaming mode: it
/// fits the model itself (base dataset plus sales-log replay, honoring
/// the fit flags) and serves `ingest` requests that append batches to
/// the log and hot-swap incrementally refitted models.
pub fn serve(args: &ArgMap) -> Result<String, CliError> {
    use std::time::Duration;
    let streaming = match (args.get("--data"), args.get("--log")) {
        (Some(_), Some(log)) => Some(log.to_string()),
        (None, None) => None,
        _ => {
            return Err(CliError::Usage(
                "serve streaming mode needs both --data and --log".into(),
            ))
        }
    };
    let addr = args.get("--addr").unwrap_or("127.0.0.1:7878");
    let cfg = pm_serve::ServeConfig {
        workers: args.get_or("--workers", 4usize)?.max(1),
        queue: args.get_or("--queue", 64usize)?.max(1),
        io_threads: args.get_or("--io-threads", 2usize)?.max(1),
        batch: args.get_or("--batch", 32usize)?.max(1),
        read_timeout: Duration::from_millis(args.get_or("--read-timeout-ms", 10_000u64)?.max(1)),
        write_timeout: Duration::from_millis(args.get_or("--write-timeout-ms", 10_000u64)?.max(1)),
        deadline: Duration::from_millis(args.get_or("--deadline-ms", 250u64)?.max(1)),
        max_line: args.get_or("--max-line", 64 * 1024usize)?.max(256),
        checkpoint: args.get("--checkpoint").map(std::path::PathBuf::from),
        max_ingest_txns: args.get_or("--max-ingest-txns", 10_000usize)?,
        max_ingest_bytes: args.get_or("--max-ingest-bytes", 8 * 1024 * 1024usize)?,
    };
    if args.get("--checkpoint").is_some() && streaming.is_none() {
        return Err(CliError::Usage(
            "--checkpoint needs streaming mode (--data and --log)".into(),
        ));
    }
    let server = match &streaming {
        Some(log) => {
            let data = load_data(args)?;
            if data.is_empty() {
                return Err(CliError::Runtime(
                    "dataset is empty — nothing to fit".into(),
                ));
            }
            let pipeline = build_pipeline(args, &data)?;
            pm_serve::Server::start_streaming(addr, data, log, pipeline, cfg)
                .map_err(|e| CliError::Runtime(e.to_string()))?
        }
        None => {
            let model_path = args.require("--model")?;
            pm_serve::Server::start(addr, model_path, cfg)
                .map_err(|e| CliError::Runtime(e.to_string()))?
        }
    };
    let bound = server.addr();
    // `--addr-file` publishes the bound address (atomically, so a reader
    // never sees a partial line) — with `--addr host:0` this is how
    // scripts and tests learn the ephemeral port.
    if let Some(path) = args.get("--addr-file") {
        pm_store::write_atomic_str(path, &format!("{bound}\n"))
            .map_err(|e| CliError::Runtime(e.to_string()))?;
    }
    let summary = server.join();
    dump_metrics(args)?;
    Ok(format!("{bound}: {summary}"))
}

/// `stats`: summarize a dataset.
pub fn stats(args: &ArgMap) -> Result<String, CliError> {
    let data = load_data(args)?;
    if data.is_empty() {
        return Err(CliError::Runtime("dataset is empty".into()));
    }
    let catalog = data.catalog();
    let targets = catalog.target_items();
    let basket: f64 = data
        .transactions()
        .iter()
        .map(|t| t.basket_size() as f64)
        .sum::<f64>()
        / data.len().max(1) as f64;
    let mpi = MostProfitableItem::fit(&data);
    let (item, code) = mpi.best_pair();
    Ok(format!(
        "transactions: {}\nitems: {} ({} targets, {} non-target)\n\
         mean basket size: {basket:.2}\nconcepts: {}\n\
         recorded target profit: {}\n\
         most profitable pair: {} at {} (${:.2} total)",
        data.len(),
        catalog.len(),
        targets.len(),
        catalog.len() - targets.len(),
        data.hierarchy().n_concepts(),
        data.total_recorded_profit(),
        catalog.item(item).name,
        catalog.code(item, code),
        mpi.best_profit(),
    ))
}
