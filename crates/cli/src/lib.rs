//! Implementation of the `profit-mining` command-line tool.
//!
//! Kept as a library so each subcommand is unit-testable; `main.rs` is a
//! thin shim. Argument parsing is hand-rolled (flag/value pairs only) to
//! keep the dependency set at the workspace baseline.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod args;
pub mod commands;

pub use args::{ArgMap, CliError};

/// Dispatch a CLI invocation; returns the text to print on stdout.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let (command, rest) = argv.split_first().ok_or_else(|| CliError::Usage(usage()))?;
    let args = ArgMap::parse(rest)?;
    match command.as_str() {
        "gen" => commands::gen(&args),
        "fit" => commands::fit(&args),
        "recommend" => commands::recommend(&args),
        "rules" => commands::rules(&args),
        "eval" => commands::eval(&args),
        "stats" => commands::stats(&args),
        "import" => commands::import(&args),
        "export" => commands::export(&args),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(CliError::Usage(format!(
            "unknown command {other:?}\n{}",
            usage()
        ))),
    }
}

/// The usage text.
pub fn usage() -> String {
    "\
profit-mining — build profit-maximizing item/price recommenders (EDBT 2002)

USAGE
  profit-mining gen        --out data.json [--dataset i|ii] [--txns N] [--items N] [--seed N]
  profit-mining fit        --data data.json --out model.json [--minsup F] [--max-body N]
                           [--no-moa] [--conf] [--no-prune] [--min-conf F] [--buying]
                           [--threads N] [--tidset auto|dense|adaptive|sparse]
  profit-mining recommend  --data data.json --model model.json [--txn N] [--top K] [--all]
  profit-mining rules      --model model.json [--top N]
  profit-mining eval       --data data.json [--minsup F] [--folds N] [--buying] [--seed N]
                           [--threads N]
  profit-mining stats      --data data.json
  profit-mining import     --catalog catalog.csv --sales sales.csv --out data.json
  profit-mining export     --data data.json --catalog catalog.csv --sales sales.csv
  profit-mining help

  --threads N selects the worker-thread count for mining and evaluation
  (0 = all cores, the default; 1 = sequential). --tidset selects the
  miner's tidset representation (auto honors the PM_TIDSET env var).
  Output is bit-identical at every setting of either.

  recommend --all serves every customer in --data through the indexed
  rule matcher and prints a per-(item, code) summary.
"
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_and_unknown() {
        assert!(run(&v(&["help"])).unwrap().contains("USAGE"));
        assert!(matches!(run(&v(&["bogus"])), Err(CliError::Usage(_))));
        assert!(matches!(run(&[]), Err(CliError::Usage(_))));
    }

    #[test]
    fn end_to_end_gen_fit_recommend_eval() {
        let dir = std::env::temp_dir().join(format!("pm-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.json").display().to_string();
        let model = dir.join("model.json").display().to_string();

        let out = run(&v(&[
            "gen",
            "--out",
            &data,
            "--dataset",
            "i",
            "--txns",
            "400",
            "--items",
            "80",
            "--seed",
            "5",
        ]))
        .unwrap();
        assert!(out.contains("400 transactions"), "{out}");

        let out = run(&v(&["stats", "--data", &data])).unwrap();
        assert!(out.contains("transactions: 400"), "{out}");

        let out = run(&v(&[
            "fit",
            "--data",
            &data,
            "--out",
            &model,
            "--minsup",
            "0.03",
            "--max-body",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("rules"), "{out}");

        let out = run(&v(&["rules", "--model", &model, "--top", "5"])).unwrap();
        assert!(out.contains("→"), "{out}");

        let out = run(&v(&[
            "recommend",
            "--data",
            &data,
            "--model",
            &model,
            "--txn",
            "0",
            "--top",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("recommend"), "{out}");

        let out = run(&v(&[
            "eval",
            "--data",
            &data,
            "--minsup",
            "0.03",
            "--folds",
            "2",
            "--max-body",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("gain"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recommend_all_serves_every_customer() {
        let dir = std::env::temp_dir().join(format!("pm-cli-all-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.json").display().to_string();
        let model = dir.join("model.json").display().to_string();
        run(&v(&[
            "gen", "--out", &data, "--txns", "300", "--items", "60", "--seed", "11",
        ]))
        .unwrap();
        run(&v(&[
            "fit",
            "--data",
            &data,
            "--out",
            &model,
            "--minsup",
            "0.03",
            "--max-body",
            "2",
        ]))
        .unwrap();
        let out = run(&v(&[
            "recommend",
            "--data",
            &data,
            "--model",
            &model,
            "--all",
        ]))
        .unwrap();
        assert!(out.contains("served 300 customers"), "{out}");
        assert!(out.contains("indexed matcher"), "{out}");
        // The per-pair counts add back up to the customer count.
        let total: u64 = out
            .lines()
            .skip(1)
            .filter_map(|l| l.split('×').next())
            .filter_map(|n| n.trim().parse::<u64>().ok())
            .sum();
        assert_eq!(total, 300, "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tidset_flag_is_output_invariant() {
        let dir = std::env::temp_dir().join(format!("pm-cli-tid-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.json").display().to_string();
        run(&v(&[
            "gen", "--out", &data, "--txns", "300", "--items", "60", "--seed", "9",
        ]))
        .unwrap();
        let fit_with = |policy: &str| {
            let model = dir.join(format!("m-{policy}.json")).display().to_string();
            run(&v(&[
                "fit",
                "--data",
                &data,
                "--out",
                &model,
                "--minsup",
                "0.03",
                "--max-body",
                "2",
                "--tidset",
                policy,
            ]))
            .unwrap();
            std::fs::read(&model).unwrap()
        };
        let dense = fit_with("dense");
        assert_eq!(dense, fit_with("adaptive"), "fitted model bytes differ");
        assert_eq!(dense, fit_with("sparse"), "fitted model bytes differ");
        assert!(matches!(
            run(&v(&[
                "fit",
                "--data",
                &data,
                "--out",
                "/tmp/x.json",
                "--tidset",
                "bogus",
            ])),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn threads_flag_is_output_invariant() {
        let dir = std::env::temp_dir().join(format!("pm-cli-thr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.json").display().to_string();
        run(&v(&[
            "gen", "--out", &data, "--txns", "300", "--items", "60", "--seed", "9",
        ]))
        .unwrap();
        let fit_at = |threads: &str| {
            let model = dir.join(format!("m{threads}.json")).display().to_string();
            run(&v(&[
                "fit",
                "--data",
                &data,
                "--out",
                &model,
                "--minsup",
                "0.03",
                "--max-body",
                "2",
                "--threads",
                threads,
            ]))
            .unwrap();
            std::fs::read(&model).unwrap()
        };
        let sequential = fit_at("1");
        assert_eq!(sequential, fit_at("4"), "fitted model bytes differ");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_import_export_roundtrip() {
        let dir = std::env::temp_dir().join(format!("pm-cli-csv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("d.json").display().to_string();
        let cat = dir.join("c.csv").display().to_string();
        let sal = dir.join("s.csv").display().to_string();
        run(&v(&[
            "gen", "--out", &data, "--txns", "50", "--items", "20",
        ]))
        .unwrap();
        run(&v(&[
            "export",
            "--data",
            &data,
            "--catalog",
            &cat,
            "--sales",
            &sal,
        ]))
        .unwrap();
        let data2 = dir.join("d2.json").display().to_string();
        let out = run(&v(&[
            "import",
            "--catalog",
            &cat,
            "--sales",
            &sal,
            "--out",
            &data2,
        ]))
        .unwrap();
        assert!(out.contains("50 transactions"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_files_are_runtime_errors() {
        assert!(matches!(
            run(&v(&[
                "fit",
                "--data",
                "/nonexistent.json",
                "--out",
                "/tmp/x.json"
            ])),
            Err(CliError::Runtime(_))
        ));
        assert!(matches!(
            run(&v(&["stats", "--data", "/nonexistent.json"])),
            Err(CliError::Runtime(_))
        ));
    }

    #[test]
    fn missing_required_flags_are_usage_errors() {
        assert!(matches!(run(&v(&["gen"])), Err(CliError::Usage(_))));
        assert!(matches!(run(&v(&["recommend"])), Err(CliError::Usage(_))));
    }
}
