//! Implementation of the `profit-mining` command-line tool.
//!
//! Kept as a library so each subcommand is unit-testable; `main.rs` is a
//! thin shim. Argument parsing is hand-rolled (flag/value pairs only) to
//! keep the dependency set at the workspace baseline.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod args;
pub mod commands;

pub use args::{ArgMap, CliError};

/// Dispatch a CLI invocation; returns the text to print on stdout.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let (command, rest) = argv.split_first().ok_or_else(|| CliError::Usage(usage()))?;
    let args = ArgMap::parse(rest)?;
    match command.as_str() {
        "gen" => commands::gen(&args),
        "fit" => commands::fit(&args),
        "ingest" => commands::ingest(&args),
        "checkpoint" => commands::checkpoint(&args),
        "split" => commands::split(&args),
        "recommend" => commands::recommend(&args),
        "assort" => commands::assort(&args),
        "rules" => commands::rules(&args),
        "eval" => commands::eval(&args),
        "stats" => commands::stats(&args),
        "import" => commands::import(&args),
        "export" => commands::export(&args),
        "serve" => commands::serve(&args),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(CliError::Usage(format!(
            "unknown command {other:?}\n{}",
            usage()
        ))),
    }
}

/// The usage text.
pub fn usage() -> String {
    "\
profit-mining — build profit-maximizing item/price recommenders (EDBT 2002)

USAGE
  profit-mining gen        --out data.json [--dataset i|ii] [--txns N] [--items N] [--seed N]
  profit-mining fit        --data data.json --out model.json [--log sales.log] [--minsup F]
                           [--max-body N] [--no-moa] [--conf] [--no-prune] [--min-conf F]
                           [--min-profit F] [--min-profit-per-item ITEM=F,...]
                           [--target items:A,B|subtree:C|codes:0,1] [--buying] [--threads N]
                           [--tidset auto|dense|adaptive|sparse]
                           [--prune auto|off|upper] [--metrics metrics.json]
  profit-mining ingest     --data data.json --log sales.log --batch batch.json
                           [--catalog-delta delta.json]
  profit-mining checkpoint --data data.json --log sales.log --out ck.pmck
                           [--no-compact] [fit flags]
  profit-mining split      --data data.json --at N --head head.json --tail tail.json
  profit-mining recommend  --data data.json --model model.json [--txn N] [--top K] [--all]
                           [--target SPEC] [--metrics metrics.json]
  profit-mining assort     --data data.json [--n N] [fit flags] [--metrics metrics.json]
  profit-mining rules      --model model.json [--top N]
  profit-mining eval       --data data.json [--minsup F] [--folds N] [--buying] [--seed N]
                           [--threads N] [--metrics metrics.json]
  profit-mining stats      --data data.json
  profit-mining import     --catalog catalog.csv --sales sales.csv --out data.json
  profit-mining export     --data data.json --catalog catalog.csv --sales sales.csv
  profit-mining serve      --model model.json [--addr HOST:PORT] [--addr-file path]
                           [--workers N] [--queue N] [--io-threads N] [--batch N]
                           [--deadline-ms N] [--read-timeout-ms N] [--write-timeout-ms N]
                           [--max-line BYTES] [--metrics metrics.json]
  profit-mining serve      --data data.json --log sales.log [fit flags] [serve flags]
                           [--checkpoint ck.pmck] [--max-ingest-txns N]
                           [--max-ingest-bytes N]
  profit-mining help

  --threads N selects the worker-thread count for mining and evaluation
  (0 = all cores, the default; 1 = sequential). --tidset selects the
  miner's tidset representation (auto honors the PM_TIDSET env var),
  and --prune the profit upper-bound pruning policy (auto honors
  PM_PRUNE; anything but \"off\" enables). Output is bit-identical at
  every setting of any of them. --min-profit F admits only rules with
  body profit ≥ F — the absolute floor the pruner cuts hardest against.
  --min-profit-per-item NAME=F,... sets per-item floors that override
  the scalar for the named target items (names or raw ids).

  Targeted mining: --target restricts rule heads to an admitted set —
  items:A,B (target item names or ids), subtree:CONCEPT (every target
  item under a hierarchy concept), or codes:0,1 (promotion-code
  classes). fit --target pushes the restriction into the mining DFS
  (pruning head-free subtrees early) and is byte-identical to fitting
  the full model and post-filtering its ranked list. recommend --target
  filters during rule selection, so out-of-target rules never count
  against --top; a customer whose matching rules are all out-of-target
  gets no recommendation rather than an off-target default.

  assort picks the top --n (item, code) pairs maximizing the *joint*
  expected recommendation profit over the training customers — an
  overlap-aware greedy over the mined rule set (two pairs serving the
  same customers add less than their individual scores). It accepts the
  fit flags, including --target and the profit floors.

  Streaming ingestion: ingest validates a JSON batch of transactions
  against the base dataset plus everything already logged, then appends
  it to the crash-safe sales log (one fsynced record per batch; a torn
  tail from a crash mid-append is truncated away on the next open).
  --catalog-delta attaches an append-only catalog/hierarchy extension
  ({\"concepts\":[...],\"items\":[...]}) to the same record, so new
  items enter the stream atomically with their first sales. fit --log
  replays the log after the cold fit as incremental updates — the
  written model is byte-identical to a cold fit on the concatenated
  stream. split cuts a dataset into a head dataset and a tail batch for
  exercising exactly that pipeline.

  Checkpointing & recovery: checkpoint seals the whole streaming state
  (data, model, warm miner caches, log position) into an atomic,
  checksummed PMCK envelope and then compacts the sales log behind it,
  so restarts replay only the records after the checkpoint. Rerunning
  checkpoint resumes from the previous envelope instead of refitting
  from scratch. serve --checkpoint points the daemon at its envelope:
  {\"op\":\"checkpoint\"} (optionally with \"path\") checkpoints and
  compacts online, and on startup the daemon restores the envelope,
  replays the log tail, and serves a model byte-identical to a full
  replay. A corrupt envelope falls back to full-log replay while the
  log is complete, and is a hard error once the log was compacted. The
  ingest batch caps (--max-ingest-txns, --max-ingest-bytes; 0 disables
  one axis) bound the cost any single {\"op\":\"ingest\"} line can
  impose; oversized batches are refused before touching the log.

  recommend --all serves every customer in --data through the indexed
  rule matcher and prints a per-(item, code) summary plus the serving
  latency p50/p95/p99.

  serve runs a line-delimited-JSON TCP daemon over a fitted model:
  an event-driven readiness loop (--io-threads reactors, epoll with a
  portable poll fallback) feeding a compute pool (--workers) in batches
  of up to --batch requests per model snapshot, bounded admission with
  load shedding, per-request timeouts with a flagged degraded mode (the
  §3.2 default rule) when the matcher errors or blows the deadline, and
  {\"op\":\"reload\"} hot model swaps that keep the old model on any
  validation failure. With --data and --log instead of --model the
  daemon runs in streaming mode: it replays the sales log, fits
  in-process with the usual fit flags, and accepts {\"op\":\"ingest\"}
  requests that append a batch to the log (durability first), refit
  incrementally, and hot-swap the model — byte-identical to a cold fit
  on the concatenated stream. --addr HOST:0 picks an ephemeral port;
  --addr-file publishes the bound address. fit writes models in a
  checksummed envelope, so torn or bit-flipped files are rejected at
  load (legacy raw-JSON models still load).

  Observability: PM_LOG=off|error|info|debug selects structured logging
  to stderr (default off); --metrics PATH dumps the metrics registry
  (phase timings, counters, latency histograms) as JSON after fit,
  eval, and recommend. Neither perturbs output: models are
  byte-identical with observability on or off.
"
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_and_unknown() {
        assert!(run(&v(&["help"])).unwrap().contains("USAGE"));
        assert!(matches!(run(&v(&["bogus"])), Err(CliError::Usage(_))));
        assert!(matches!(run(&[]), Err(CliError::Usage(_))));
    }

    #[test]
    fn end_to_end_gen_fit_recommend_eval() {
        let dir = std::env::temp_dir().join(format!("pm-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.json").display().to_string();
        let model = dir.join("model.json").display().to_string();

        let out = run(&v(&[
            "gen",
            "--out",
            &data,
            "--dataset",
            "i",
            "--txns",
            "400",
            "--items",
            "80",
            "--seed",
            "5",
        ]))
        .unwrap();
        assert!(out.contains("400 transactions"), "{out}");

        let out = run(&v(&["stats", "--data", &data])).unwrap();
        assert!(out.contains("transactions: 400"), "{out}");

        let out = run(&v(&[
            "fit",
            "--data",
            &data,
            "--out",
            &model,
            "--minsup",
            "0.03",
            "--max-body",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("rules"), "{out}");

        let out = run(&v(&["rules", "--model", &model, "--top", "5"])).unwrap();
        assert!(out.contains("→"), "{out}");

        let out = run(&v(&[
            "recommend",
            "--data",
            &data,
            "--model",
            &model,
            "--txn",
            "0",
            "--top",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("recommend"), "{out}");

        let out = run(&v(&[
            "eval",
            "--data",
            &data,
            "--minsup",
            "0.03",
            "--folds",
            "2",
            "--max-body",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("gain"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recommend_all_serves_every_customer() {
        let dir = std::env::temp_dir().join(format!("pm-cli-all-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.json").display().to_string();
        let model = dir.join("model.json").display().to_string();
        run(&v(&[
            "gen", "--out", &data, "--txns", "300", "--items", "60", "--seed", "11",
        ]))
        .unwrap();
        run(&v(&[
            "fit",
            "--data",
            &data,
            "--out",
            &model,
            "--minsup",
            "0.03",
            "--max-body",
            "2",
        ]))
        .unwrap();
        let out = run(&v(&[
            "recommend",
            "--data",
            &data,
            "--model",
            &model,
            "--all",
        ]))
        .unwrap();
        assert!(out.contains("served 300 customers"), "{out}");
        assert!(out.contains("indexed matcher"), "{out}");
        // The per-pair counts add back up to the customer count.
        let total: u64 = out
            .lines()
            .skip(1)
            .filter_map(|l| l.split('×').next())
            .filter_map(|n| n.trim().parse::<u64>().ok())
            .sum();
        assert_eq!(total, 300, "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tidset_flag_is_output_invariant() {
        let dir = std::env::temp_dir().join(format!("pm-cli-tid-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.json").display().to_string();
        run(&v(&[
            "gen", "--out", &data, "--txns", "300", "--items", "60", "--seed", "9",
        ]))
        .unwrap();
        let fit_with = |policy: &str| {
            let model = dir.join(format!("m-{policy}.json")).display().to_string();
            run(&v(&[
                "fit",
                "--data",
                &data,
                "--out",
                &model,
                "--minsup",
                "0.03",
                "--max-body",
                "2",
                "--tidset",
                policy,
            ]))
            .unwrap();
            std::fs::read(&model).unwrap()
        };
        let dense = fit_with("dense");
        assert_eq!(dense, fit_with("adaptive"), "fitted model bytes differ");
        assert_eq!(dense, fit_with("sparse"), "fitted model bytes differ");
        assert!(matches!(
            run(&v(&[
                "fit",
                "--data",
                &data,
                "--out",
                "/tmp/x.json",
                "--tidset",
                "bogus",
            ])),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn threads_flag_is_output_invariant() {
        let dir = std::env::temp_dir().join(format!("pm-cli-thr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.json").display().to_string();
        run(&v(&[
            "gen", "--out", &data, "--txns", "300", "--items", "60", "--seed", "9",
        ]))
        .unwrap();
        let fit_at = |threads: &str| {
            let model = dir.join(format!("m{threads}.json")).display().to_string();
            run(&v(&[
                "fit",
                "--data",
                &data,
                "--out",
                &model,
                "--minsup",
                "0.03",
                "--max-body",
                "2",
                "--threads",
                threads,
            ]))
            .unwrap();
            std::fs::read(&model).unwrap()
        };
        let sequential = fit_at("1");
        assert_eq!(sequential, fit_at("4"), "fitted model bytes differ");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Structs mirroring the `pm-obs` dump schema, to prove `--metrics`
    /// emits JSON our own serde shim can parse.
    #[derive(serde::Deserialize)]
    struct PhaseTime {
        phase: String,
        millis: f64,
    }

    #[derive(serde::Deserialize)]
    struct MetricsDump {
        phases: Vec<PhaseTime>,
    }

    #[test]
    fn metrics_flag_emits_json_without_perturbing_model_bytes() {
        let dir = std::env::temp_dir().join(format!("pm-cli-obs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.json").display().to_string();
        run(&v(&[
            "gen", "--out", &data, "--txns", "300", "--items", "60", "--seed", "7",
        ]))
        .unwrap();

        // Baseline: observability fully off, no --metrics.
        pm_obs::set_level(pm_obs::Level::Off);
        let baseline = dir.join("m-base.json").display().to_string();
        run(&v(&[
            "fit",
            "--data",
            &data,
            "--out",
            &baseline,
            "--minsup",
            "0.03",
            "--max-body",
            "2",
        ]))
        .unwrap();
        let baseline_bytes = std::fs::read(&baseline).unwrap();

        // Instrumented runs: PM_LOG=debug + --metrics at 1/2/8 threads
        // must still write byte-identical models.
        std::env::set_var("PM_LOG", "debug");
        pm_obs::set_level(pm_obs::Level::Debug);
        for threads in ["1", "2", "8"] {
            let model = dir.join(format!("m-t{threads}.json")).display().to_string();
            let metrics = dir.join(format!("x-t{threads}.json")).display().to_string();
            run(&v(&[
                "fit",
                "--data",
                &data,
                "--out",
                &model,
                "--minsup",
                "0.03",
                "--max-body",
                "2",
                "--threads",
                threads,
                "--metrics",
                &metrics,
            ]))
            .unwrap();
            assert_eq!(
                std::fs::read(&model).unwrap(),
                baseline_bytes,
                "model bytes changed under PM_LOG=debug + --metrics at {threads} threads"
            );
            let dump: MetricsDump =
                serde_json::from_str(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
            let phases: Vec<&str> = dump.phases.iter().map(|p| p.phase.as_str()).collect();
            for want in ["mine.tidsets", "mine.dfs", "fit.mine", "fit.build"] {
                assert!(phases.contains(&want), "missing phase {want}: {phases:?}");
            }
            assert!(dump.phases.iter().all(|p| p.millis >= 0.0));
        }
        pm_obs::set_level(pm_obs::Level::Off);

        // recommend --all --metrics: the dump gains the serving histogram
        // and the summary reports its quantiles.
        let metrics = dir.join("serve-metrics.json").display().to_string();
        let out = run(&v(&[
            "recommend",
            "--data",
            &data,
            "--model",
            &baseline,
            "--all",
            "--metrics",
            &metrics,
        ]))
        .unwrap();
        assert!(out.contains("serving latency: p50"), "{out}");
        let raw = std::fs::read_to_string(&metrics).unwrap();
        assert!(raw.contains("\"serve.recommend_ns\""), "{raw}");
        assert!(raw.contains("\"p99_ns\""), "{raw}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_rule_trace_degrades_instead_of_panicking() {
        let dir = std::env::temp_dir().join(format!("pm-cli-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.json").display().to_string();
        let model_path = dir.join("model.json").display().to_string();
        run(&v(&[
            "gen", "--out", &data, "--txns", "200", "--items", "40", "--seed", "3",
        ]))
        .unwrap();
        run(&v(&[
            "fit",
            "--data",
            &data,
            "--out",
            &model_path,
            "--minsup",
            "0.03",
            "--max-body",
            "2",
        ]))
        .unwrap();
        // fit writes sealed envelopes now, so load through the store.
        let model = pm_serve::load_model(&model_path).unwrap();
        let mut rec = profit_core::Recommender::recommend(&model, &[]);
        // A trace the model cannot explain (e.g. produced by a different
        // recommender) must degrade, not abort the command.
        rec.rule_index = None;
        let line = commands::render_recommendation(&model, &rec);
        assert!(line.contains("(no rule trace available)"), "{line}");
        rec.rule_index = Some(usize::MAX);
        let line = commands::render_recommendation(&model, &rec);
        assert!(line.contains("(no rule trace available)"), "{line}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_import_export_roundtrip() {
        let dir = std::env::temp_dir().join(format!("pm-cli-csv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("d.json").display().to_string();
        let cat = dir.join("c.csv").display().to_string();
        let sal = dir.join("s.csv").display().to_string();
        run(&v(&[
            "gen", "--out", &data, "--txns", "50", "--items", "20",
        ]))
        .unwrap();
        run(&v(&[
            "export",
            "--data",
            &data,
            "--catalog",
            &cat,
            "--sales",
            &sal,
        ]))
        .unwrap();
        let data2 = dir.join("d2.json").display().to_string();
        let out = run(&v(&[
            "import",
            "--catalog",
            &cat,
            "--sales",
            &sal,
            "--out",
            &data2,
        ]))
        .unwrap();
        assert!(out.contains("50 transactions"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_files_are_runtime_errors() {
        assert!(matches!(
            run(&v(&[
                "fit",
                "--data",
                "/nonexistent.json",
                "--out",
                "/tmp/x.json"
            ])),
            Err(CliError::Runtime(_))
        ));
        assert!(matches!(
            run(&v(&["stats", "--data", "/nonexistent.json"])),
            Err(CliError::Runtime(_))
        ));
    }

    #[test]
    fn missing_required_flags_are_usage_errors() {
        assert!(matches!(run(&v(&["gen"])), Err(CliError::Usage(_))));
        assert!(matches!(run(&v(&["recommend"])), Err(CliError::Usage(_))));
        assert!(matches!(run(&v(&["ingest"])), Err(CliError::Usage(_))));
        assert!(matches!(run(&v(&["split"])), Err(CliError::Usage(_))));
    }

    /// The full streaming pipeline: `split` a dataset, `ingest` the tail
    /// in two batches, `fit --log` on the head — and get exactly the
    /// bytes a cold `fit` writes on the full dataset.
    #[test]
    fn split_ingest_fit_log_matches_cold_fit_bytes() {
        let dir = std::env::temp_dir().join(format!("pm-cli-stream-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let full = dir.join("full.json").display().to_string();
        let head = dir.join("head.json").display().to_string();
        let tail = dir.join("tail.json").display().to_string();
        let mid = dir.join("mid.json").display().to_string();
        let log = dir.join("sales.log").display().to_string();

        run(&v(&[
            "gen", "--out", &full, "--txns", "400", "--items", "80", "--seed", "21",
        ]))
        .unwrap();
        let out = run(&v(&[
            "split", "--data", &full, "--at", "250", "--head", &head, "--tail", &tail,
        ]))
        .unwrap();
        assert!(out.contains("head dataset"), "{out}");
        assert!(out.contains("150 transactions"), "{out}");

        // Re-split the tail batch into two ingest batches.
        let tail_txns: Vec<pm_txn::Transaction> =
            serde_json::from_str(&std::fs::read_to_string(&tail).unwrap()).unwrap();
        let (a, b) = tail_txns.split_at(70);
        std::fs::write(&mid, serde_json::to_string(&a).unwrap()).unwrap();
        let out = run(&v(&[
            "ingest", "--data", &head, "--log", &log, "--batch", &mid,
        ]))
        .unwrap();
        assert!(out.contains("appended 70 transactions"), "{out}");
        assert!(out.contains("stream now 320 transactions"), "{out}");
        std::fs::write(&mid, serde_json::to_string(&b).unwrap()).unwrap();
        let out = run(&v(&[
            "ingest", "--data", &head, "--log", &log, "--batch", &mid,
        ]))
        .unwrap();
        assert!(out.contains("stream now 400 transactions"), "{out}");

        let fit = |data: &str, out: &str, log: Option<&str>| {
            let mut argv = v(&[
                "fit",
                "--data",
                data,
                "--out",
                out,
                "--minsup",
                "0.03",
                "--max-body",
                "2",
            ]);
            if let Some(l) = log {
                argv.extend(v(&["--log", l]));
            }
            run(&argv).unwrap()
        };
        let cold_model = dir.join("m-cold.json").display().to_string();
        fit(&full, &cold_model, None);
        let inc_model = dir.join("m-inc.json").display().to_string();
        let out = fit(&head, &inc_model, Some(&log));
        assert!(
            out.contains("replayed 2 log records into 400 transactions"),
            "{out}"
        );
        assert_eq!(
            std::fs::read(&cold_model).unwrap(),
            std::fs::read(&inc_model).unwrap(),
            "fit --log bytes differ from the cold fit on the concatenated stream"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A crash mid-append leaves a torn tail; the next `ingest` recovers
    /// (reporting the truncation) and the stream continues cleanly.
    #[test]
    fn ingest_recovers_a_torn_log_tail() {
        let _guard = pm_store::faults::test_lock();
        let dir = std::env::temp_dir().join(format!("pm-cli-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let full = dir.join("full.json").display().to_string();
        let head = dir.join("head.json").display().to_string();
        let tail = dir.join("tail.json").display().to_string();
        let log = dir.join("sales.log").display().to_string();
        run(&v(&[
            "gen", "--out", &full, "--txns", "200", "--items", "40", "--seed", "13",
        ]))
        .unwrap();
        run(&v(&[
            "split", "--data", &full, "--at", "100", "--head", &head, "--tail", &tail,
        ]))
        .unwrap();
        let tail_txns: Vec<pm_txn::Transaction> =
            serde_json::from_str(&std::fs::read_to_string(&tail).unwrap()).unwrap();
        let (a, b) = tail_txns.split_at(50);
        let batch_a = dir.join("a.json").display().to_string();
        let batch_b = dir.join("b.json").display().to_string();
        std::fs::write(&batch_a, serde_json::to_string(&a).unwrap()).unwrap();
        std::fs::write(&batch_b, serde_json::to_string(&b).unwrap()).unwrap();

        // First batch lands cleanly (and creates the log).
        run(&v(&[
            "ingest", "--data", &head, "--log", &log, "--batch", &batch_a,
        ]))
        .unwrap();

        // The second ingest dies mid-append: 11 bytes of the record hit
        // the disk before the injected crash.
        pm_store::faults::set_torn_write_at(Some(11));
        let err = run(&v(&[
            "ingest", "--data", &head, "--log", &log, "--batch", &batch_b,
        ]))
        .unwrap_err();
        pm_store::faults::set_torn_write_at(None);
        assert!(matches!(err, CliError::Runtime(_)), "{err}");

        // The retry truncates the torn tail and appends the full record.
        let out = run(&v(&[
            "ingest", "--data", &head, "--log", &log, "--batch", &batch_b,
        ]))
        .unwrap();
        assert!(out.contains("recovered a torn tail of 11 bytes"), "{out}");
        assert!(out.contains("stream now 200 transactions"), "{out}");

        // Batches that don't validate against the stream are rejected.
        std::fs::write(&tail, "[]").unwrap();
        let err = run(&v(&[
            "ingest", "--data", &head, "--log", &log, "--batch", &tail,
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("batch is empty"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// `--target` covering every target item is an identity: the fitted
    /// model is byte-for-byte the untargeted one (names and raw ids both
    /// resolve). A code-class target also round-trips through `recommend
    /// --target`, which must never answer outside the target.
    #[test]
    fn target_flag_identity_and_filtered_recommend() {
        let dir = std::env::temp_dir().join(format!("pm-cli-target-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.json").display().to_string();
        run(&v(&[
            "gen", "--out", &data, "--txns", "300", "--items", "60", "--seed", "17",
        ]))
        .unwrap();
        let fit_with = |name: &str, extra: &[&str]| {
            let model = dir.join(format!("m-{name}.json")).display().to_string();
            let mut argv = v(&[
                "fit",
                "--data",
                &data,
                "--out",
                &model,
                "--minsup",
                "0.03",
                "--max-body",
                "2",
            ]);
            argv.extend(v(extra));
            run(&argv).unwrap();
            (model.clone(), std::fs::read(&model).unwrap())
        };
        let (plain_path, plain) = fit_with("plain", &[]);
        let (_, all) = fit_with("all", &["--target", "items:target-1,target-2"]);
        assert_eq!(plain, all, "an all-item target must be an identity");

        // recommend --target code class: every line stays in the class.
        let out = run(&v(&[
            "recommend",
            "--data",
            &data,
            "--model",
            &plain_path,
            "--txn",
            "0",
            "--top",
            "5",
            "--target",
            "codes:0",
        ]))
        .unwrap();
        assert!(
            out.contains("recommend") || out.contains("no recommendation"),
            "{out}"
        );
        // Bad specs are usage errors, resolved against the real catalog.
        for spec in ["items:nope", "subtree:nope", "codes:x", "garbage"] {
            let err = run(&v(&[
                "recommend",
                "--data",
                &data,
                "--model",
                &plain_path,
                "--target",
                spec,
            ]))
            .unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{spec}: {err}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Uniform per-item floors are byte-identical to the scalar floor,
    /// and the flag set composes with `--prune` without changing bytes.
    #[test]
    fn per_item_floor_flag_generalizes_scalar() {
        let dir = std::env::temp_dir().join(format!("pm-cli-floor-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.json").display().to_string();
        run(&v(&[
            "gen", "--out", &data, "--txns", "300", "--items", "60", "--seed", "23",
        ]))
        .unwrap();
        let fit_with = |name: &str, extra: &[&str]| {
            let model = dir.join(format!("m-{name}.json")).display().to_string();
            let mut argv = v(&[
                "fit",
                "--data",
                &data,
                "--out",
                &model,
                "--minsup",
                "0.03",
                "--max-body",
                "2",
            ]);
            argv.extend(v(extra));
            run(&argv).unwrap();
            std::fs::read(&model).unwrap()
        };
        let scalar = fit_with("scalar", &["--min-profit", "5.0"]);
        let per_item = fit_with(
            "per-item",
            &["--min-profit-per-item", "target-1=5.0,target-2=5.0"],
        );
        assert_eq!(scalar, per_item, "uniform per-item floors ≠ scalar floor");
        let per_item_off = fit_with(
            "per-item-off",
            &[
                "--min-profit-per-item",
                "target-1=5.0,target-2=5.0",
                "--prune",
                "off",
            ],
        );
        assert_eq!(per_item, per_item_off, "floors must be prune-invariant");
        // Malformed floor specs are usage errors.
        let err = run(&v(&[
            "fit",
            "--data",
            &data,
            "--out",
            "/tmp/x.json",
            "--min-profit-per-item",
            "target-1=abc",
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn assort_picks_distinct_pairs() {
        let dir = std::env::temp_dir().join(format!("pm-cli-assort-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.json").display().to_string();
        run(&v(&[
            "gen", "--out", &data, "--txns", "300", "--items", "60", "--seed", "29",
        ]))
        .unwrap();
        let out = run(&v(&[
            "assort",
            "--data",
            &data,
            "--n",
            "3",
            "--minsup",
            "0.03",
            "--max-body",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("assortment over 300 customers"), "{out}");
        assert!(out.contains("joint expected profit"), "{out}");
        let picks: Vec<&str> = out
            .lines()
            .skip(1)
            .filter(|l| l.contains(". target-"))
            .collect();
        assert!(!picks.is_empty() && picks.len() <= 3, "{out}");
        // --n 0 is a usage error; assort accepts --target.
        assert!(matches!(
            run(&v(&["assort", "--data", &data, "--n", "0"])),
            Err(CliError::Usage(_))
        ));
        let out = run(&v(&[
            "assort",
            "--data",
            &data,
            "--n",
            "2",
            "--minsup",
            "0.03",
            "--max-body",
            "2",
            "--target",
            "items:target-1",
        ]))
        .unwrap();
        assert!(!out.contains("target-2"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn split_rejects_degenerate_cut_points() {
        let dir = std::env::temp_dir().join(format!("pm-cli-split-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let full = dir.join("full.json").display().to_string();
        let head = dir.join("head.json").display().to_string();
        let tail = dir.join("tail.json").display().to_string();
        run(&v(&[
            "gen", "--out", &full, "--txns", "50", "--items", "20", "--seed", "1",
        ]))
        .unwrap();
        for at in ["0", "50", "51"] {
            assert!(
                matches!(
                    run(&v(&[
                        "split", "--data", &full, "--at", at, "--head", &head, "--tail", &tail,
                    ])),
                    Err(CliError::Usage(_))
                ),
                "--at {at} should be rejected"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
