//! `profit-mining` — command-line profit mining.
//!
//! ```text
//! profit-mining gen        --out data.json [--dataset i|ii] [--txns N] [--items N] [--seed N]
//! profit-mining fit        --data data.json --out model.json [--minsup F] [--max-body N]
//!                          [--no-moa] [--conf] [--no-prune] [--min-conf F]
//!                          [--min-profit F] [--prune auto|off|upper]
//! profit-mining recommend  --data data.json --model model.json [--txn N | --items a,b,c]
//! profit-mining rules      --model model.json [--top N]
//! profit-mining eval       --data data.json [--minsup F] [--folds N] [--buying] [--seed N]
//! profit-mining stats      --data data.json
//! ```
//!
//! Datasets are the JSON produced by `gen` (or by
//! [`pm_txn::TransactionSet::to_json`]); models serialize the trained
//! rule list plus catalog/hierarchy so `recommend` works without
//! retraining.

use pm_cli::{run, CliError};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(CliError::Usage(msg)) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
        Err(CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
