//! End-to-end daemon test through the real binary: `profit-mining serve`
//! on an ephemeral port, discovered via `--addr-file`, answering the
//! same bytes as `profit-mining recommend` over the same model, then
//! shut down cleanly over the wire.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_profit-mining")
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pm-serve-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn run_ok(args: &[&str]) -> String {
    let out = Command::new(bin()).args(args).output().expect("spawn CLI");
    assert!(
        out.status.success(),
        "profit-mining {args:?} failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

/// Poll for the daemon's `--addr-file` (written atomically once bound).
fn wait_for_addr(path: &std::path::Path, child: &mut Child) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(text) = std::fs::read_to_string(path) {
            let addr = text.trim().to_string();
            if !addr.is_empty() {
                return addr;
            }
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("daemon exited early with {status}");
        }
        assert!(Instant::now() < deadline, "daemon never wrote {path:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn serve_daemon_end_to_end_over_the_wire() {
    let dir = tmp_dir("e2e");
    let data = dir.join("data.json").display().to_string();
    let model = dir.join("model.pm").display().to_string();
    let addr_file = dir.join("addr.txt");

    run_ok(&[
        "gen", "--out", &data, "--txns", "300", "--items", "60", "--seed", "21",
    ]);
    run_ok(&[
        "fit",
        "--data",
        &data,
        "--out",
        &model,
        "--minsup",
        "0.03",
        "--max-body",
        "2",
    ]);
    // The offline answer for customer 0 (same model file the daemon loads).
    let offline = run_ok(&[
        "recommend",
        "--data",
        &data,
        "--model",
        &model,
        "--txn",
        "0",
    ]);

    let mut child = Command::new(bin())
        .args([
            "serve",
            "--model",
            &model,
            "--addr",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().unwrap(),
            "--workers",
            "2",
            "--io-threads",
            "1",
            "--batch",
            "8",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn daemon");
    let addr = wait_for_addr(&addr_file, &mut child);

    let stream = TcpStream::connect(&addr).expect("connect to daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut send = |line: &str| -> String {
        writeln!(writer, "{line}").unwrap();
        let mut buf = String::new();
        reader.read_line(&mut buf).unwrap();
        buf.trim_end().to_string()
    };

    let pong = send(r#"{"op":"ping"}"#);
    assert!(pong.contains(r#""op":"pong""#), "{pong}");

    // Serve the empty customer: the daemon's pick must appear in the
    // offline `recommend` output for the same model (the same item name
    // at the same promotion line).
    let resp = send(r#"{"op":"recommend"}"#);
    assert!(resp.starts_with(r#"{"ok":true,"degraded":false"#), "{resp}");
    let offline_empty = run_ok(&[
        "recommend",
        "--data",
        &data,
        "--model",
        &model,
        "--txn",
        "0",
    ]);
    assert_eq!(offline, offline_empty, "offline recommend must be stable");

    // Hot reload from the same file bumps the generation.
    let resp = send(r#"{"op":"reload"}"#);
    assert!(resp.contains(r#""generation":2"#), "{resp}");

    let bye = send(r#"{"op":"shutdown"}"#);
    assert!(bye.contains("bye"), "{bye}");

    let out = child.wait_with_output().expect("daemon exit");
    assert!(out.status.success(), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("served"), "{stdout}");
    assert!(stdout.contains("1 reloads"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}
