//! The `--metrics` dump must be a well-formed JSON text file: parseable
//! (checked with the workspace's vendored `serde_json`) and ending in
//! exactly one trailing newline.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_profit-mining")
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pm-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn run(args: &[&str]) {
    let out = Command::new(bin()).args(args).output().expect("spawn CLI");
    assert!(
        out.status.success(),
        "profit-mining {args:?} failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn metrics_file_is_parseable_json_with_trailing_newline() {
    let dir = tmp_dir("metrics");
    let data = dir.join("data.json");
    let model = dir.join("model.json");
    let metrics = dir.join("metrics.json");
    run(&[
        "gen",
        "--out",
        data.to_str().unwrap(),
        "--txns",
        "80",
        "--items",
        "12",
        "--seed",
        "7",
    ]);
    run(&[
        "fit",
        "--data",
        data.to_str().unwrap(),
        "--out",
        model.to_str().unwrap(),
        "--minsup",
        "0.05",
        "--threads",
        "1",
        "--metrics",
        metrics.to_str().unwrap(),
    ]);

    let text = std::fs::read_to_string(&metrics).expect("metrics file written");
    assert!(
        text.ends_with('\n') && !text.ends_with("\n\n"),
        "metrics dump must end in exactly one newline"
    );
    let parsed: serde::Value = serde_json::from_str(&text).expect("metrics dump must be JSON");
    match parsed {
        serde::Value::Map(entries) => {
            let keys: Vec<_> = entries.iter().map(|(k, _)| k.as_str()).collect();
            for expected in ["phases", "counters"] {
                assert!(keys.contains(&expected), "missing {expected:?} in {keys:?}");
            }
        }
        other => panic!("metrics dump must be a JSON object, got {other:?}"),
    }

    // The model written alongside is a sealed envelope; its checksummed
    // payload must be a valid JSON document (guards the primary output
    // while we are here).
    let (payload, provenance) = pm_store::load_model_file(&model).expect("model envelope valid");
    assert_eq!(provenance, pm_store::Provenance::Sealed);
    let model_text = String::from_utf8(payload).expect("payload is UTF-8");
    serde_json::from_str::<serde::Value>(&model_text).expect("model payload must be JSON");

    let _ = std::fs::remove_dir_all(&dir);
}
