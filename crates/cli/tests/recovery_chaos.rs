//! The kill-the-daemon recovery harness (DESIGN.md §17).
//!
//! Two layers of chaos:
//!
//! * a **deterministic crash-point matrix** driving the CLI in-process
//!   with `pm_store::faults` — a torn log append, a full disk under the
//!   checkpoint envelope, a vanished parent directory before the
//!   rename, and the "sealed but never compacted" state a crash between
//!   checkpoint and compaction leaves behind — asserting after every
//!   injected failure that recovery converges on a model byte-identical
//!   to a cold fit that never crashed;
//! * a **real SIGKILL matrix** on the `profit-mining serve` daemon:
//!   kill -9 after each of ingest → checkpoint → ingest, restart on the
//!   same log + checkpoint, and require the recovered daemon's answers
//!   to be byte-identical to an in-process model that never died.

use pm_rules::{MinerConfig, ProfitMode, Support};
use pm_serve::protocol::{obj, rec_value, render};
use pm_txn::{Sale, Transaction, TransactionSet};
use profit_core::{Checkpoint, CutConfig, Matcher, ProfitMiner, Recommender, RuleModel};
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_profit-mining")
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pm-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// The exact pipeline `profit-mining` builds for
/// `--minsup 0.03 --max-body 2` (note the CLI's default minimum
/// confidence of 0.5).
fn cli_pipeline() -> ProfitMiner {
    ProfitMiner::new(MinerConfig {
        min_support: Support::Fraction(0.03),
        max_body_len: 2,
        min_confidence: Some(0.5),
        ..MinerConfig::default()
    })
    .with_cut(CutConfig {
        profit_mode: ProfitMode::Profit,
        prune: true,
        ..CutConfig::default()
    })
}

const FIT_FLAGS: [&str; 4] = ["--minsup", "0.03", "--max-body", "2"];

fn cli(args: &[&str]) -> Result<String, pm_cli::CliError> {
    let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    pm_cli::run(&argv)
}

fn cli_ok(args: &[&str]) -> String {
    cli(args).unwrap_or_else(|e| panic!("profit-mining {args:?} failed: {e}"))
}

/// Decode the model sealed inside a `PMCK` envelope.
fn checkpointed_model(path: &Path) -> Checkpoint {
    let bytes = pm_store::checkpoint::load(path).expect("open checkpoint envelope");
    Checkpoint::decode(&bytes).expect("decode checkpoint payload")
}

fn model_json(m: &RuleModel) -> String {
    serde_json::to_string(&m.save()).expect("model serializes")
}

/// Every deterministic crash point in ingest → checkpoint → compact,
/// driven through the real CLI commands with fault injection. After
/// each injected failure the retried operation must converge on a
/// checkpoint whose model is byte-identical to a cold fit on the
/// concatenated stream — a crash can cost a retry, never data.
#[test]
fn crash_point_matrix_recovers_byte_identically() {
    let _guard = pm_store::faults::test_lock();
    let dir = tmp_dir("matrix");
    let full = dir.join("full.json").display().to_string();
    let head = dir.join("head.json").display().to_string();
    let tail = dir.join("tail.json").display().to_string();
    let b1 = dir.join("b1.json").display().to_string();
    let b2 = dir.join("b2.json").display().to_string();
    let log = dir.join("sales.log").display().to_string();
    let ck = dir.join("ck.pmck").display().to_string();

    cli_ok(&[
        "gen", "--out", &full, "--txns", "260", "--items", "50", "--seed", "77",
    ]);
    cli_ok(&[
        "split", "--data", &full, "--at", "160", "--head", &head, "--tail", &tail,
    ]);
    let tail_txns: Vec<Transaction> =
        serde_json::from_str(&std::fs::read_to_string(&tail).unwrap()).unwrap();
    let (a, b) = tail_txns.split_at(50);
    std::fs::write(&b1, serde_json::to_string(&a).unwrap()).unwrap();
    std::fs::write(&b2, serde_json::to_string(&b).unwrap()).unwrap();
    let head_data = TransactionSet::from_json(&std::fs::read_to_string(&head).unwrap()).unwrap();
    let mut mid_data = head_data.clone();
    mid_data.extend_from(a).unwrap();
    let full_data = TransactionSet::from_json(&std::fs::read_to_string(&full).unwrap()).unwrap();

    // Crash point 1: the log append tears mid-record. The retry
    // truncates the torn tail and lands the batch. (Create the empty
    // log first so the fault hits the append, not the header write.)
    drop(pm_store::log::SalesLog::open(&log).expect("create empty log"));
    pm_store::faults::set_torn_write_at(Some(9));
    let err = cli(&["ingest", "--data", &head, "--log", &log, "--batch", &b1]).unwrap_err();
    pm_store::faults::set_torn_write_at(None);
    assert!(err.to_string().contains("injected torn write"), "{err}");
    let out = cli_ok(&["ingest", "--data", &head, "--log", &log, "--batch", &b1]);
    assert!(out.contains("recovered a torn tail of 9 bytes"), "{out}");
    assert!(out.contains("stream now 210 transactions"), "{out}");

    // Crash point 2: the disk fills while the checkpoint envelope is
    // written. No checkpoint may appear, the log must stay whole, and
    // the retry must seal the same state a never-crashed run would.
    pm_store::faults::set_disk_full_at(Some(16));
    let mut ck_args = vec!["checkpoint", "--data", &head, "--log", &log, "--out", &ck];
    ck_args.extend_from_slice(&FIT_FLAGS);
    ck_args.push("--no-compact");
    let err = cli(&ck_args).unwrap_err();
    pm_store::faults::set_disk_full_at(None);
    assert!(err.to_string().contains("No space left"), "{err}");
    assert!(
        !Path::new(&ck).exists(),
        "failed seal must not leave a file"
    );
    let out = cli_ok(&ck_args);
    assert!(out.contains("cold-fitted the base dataset"), "{out}");
    assert!(out.contains("log left uncompacted"), "{out}");
    let sealed_mid = checkpointed_model(Path::new(&ck));
    assert_eq!(sealed_mid.stream_pos, 1);
    assert_eq!(
        serde_json::to_string(&sealed_mid.model).unwrap(),
        model_json(&cli_pipeline().fit(&mid_data)),
        "checkpointed model after a crashed seal must equal the cold fit"
    );

    // The un-compacted checkpoint IS the crash-between-seal-and-compact
    // state: the envelope exists and the log still holds everything.
    // Continue the stream and let the next checkpoint skip the
    // duplicate prefix and compact.
    let out = cli_ok(&["ingest", "--data", &head, "--log", &log, "--batch", &b2]);
    assert!(out.contains("stream now 260 transactions"), "{out}");

    // Crash point 3: the process dies mid-way through writing the new
    // envelope's temp file — the rename never runs, so the previous
    // envelope must survive byte-for-byte.
    let sealed_bytes = std::fs::read(&ck).unwrap();
    pm_store::faults::set_torn_write_at(Some(32));
    let mut ck_args = vec!["checkpoint", "--data", &head, "--log", &log, "--out", &ck];
    ck_args.extend_from_slice(&FIT_FLAGS);
    let err = cli(&ck_args).unwrap_err();
    pm_store::faults::set_torn_write_at(None);
    assert!(err.to_string().contains("injected torn write"), "{err}");
    assert!(
        std::fs::read(&ck).unwrap() == sealed_bytes,
        "a failed re-seal must leave the old envelope intact"
    );

    // Recovery: the same command resumes from the surviving envelope,
    // replays the one tail record, seals, and compacts.
    let out = cli_ok(&ck_args);
    assert!(
        out.contains("resumed from the existing checkpoint"),
        "{out}"
    );
    assert!(out.contains("replayed 1 tail records"), "{out}");
    assert!(out.contains("dropped 2 records, retained 0"), "{out}");
    let sealed_full = checkpointed_model(Path::new(&ck));
    assert_eq!(sealed_full.stream_pos, 2);
    assert_eq!(
        serde_json::to_string(&sealed_full.model).unwrap(),
        model_json(&cli_pipeline().fit(&full_data)),
        "recovered checkpoint must hold the cold full-stream fit"
    );
    assert_eq!(sealed_full.data_json, full_data.to_json());

    // Checkpointing the (now compacted, empty-tail) stream again is a
    // byte-stable no-op: resume, replay nothing, seal the same bytes.
    let before = std::fs::read(&ck).unwrap();
    let out = cli_ok(&ck_args);
    assert!(out.contains("replayed 0 tail records"), "{out}");
    assert_eq!(
        std::fs::read(&ck).unwrap(),
        before,
        "re-checkpointing an unchanged stream must reproduce the envelope bytes"
    );

    // A compacted log without its checkpoint is typed refusal territory.
    let err = cli(&[
        "fit",
        "--data",
        &head,
        "--out",
        &dir.join("m.pm").display().to_string(),
        "--log",
        &log,
    ])
    .unwrap_err();
    assert!(err.to_string().contains("compacted to base"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Poll for the daemon's `--addr-file` (written atomically once bound).
fn wait_for_addr(path: &Path, child: &mut Child) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(text) = std::fs::read_to_string(path) {
            let addr = text.trim().to_string();
            if !addr.is_empty() {
                return addr;
            }
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("daemon exited early with {status}");
        }
        assert!(Instant::now() < deadline, "daemon never wrote {path:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn start(data: &str, log: &str, ck: &str, addr_file: &Path) -> Daemon {
        let _ = std::fs::remove_file(addr_file);
        let mut args = vec![
            "serve",
            "--data",
            data,
            "--log",
            log,
            "--checkpoint",
            ck,
            "--addr",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().unwrap(),
            "--workers",
            "2",
            "--io-threads",
            "1",
        ];
        args.extend_from_slice(&FIT_FLAGS);
        let mut child = Command::new(bin())
            .args(&args)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn daemon");
        let addr = wait_for_addr(addr_file, &mut child);
        Daemon { child, addr }
    }

    fn connect(&self) -> Client {
        let stream = TcpStream::connect(&self.addr).expect("connect to daemon");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    /// SIGKILL — no shutdown handshake, no flush, nothing.
    fn kill(mut self) {
        self.child.kill().expect("kill -9 the daemon");
        self.child.wait().expect("reap the killed daemon");
    }

    fn shutdown(mut self, c: &mut Client) {
        assert!(c.send(r#"{"op":"shutdown"}"#).starts_with(r#"{"ok":true"#));
        let status = self.child.wait().expect("daemon exit");
        assert!(status.success(), "clean shutdown must exit 0");
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn send(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").expect("write request");
        let mut buf = String::new();
        self.reader.read_line(&mut buf).expect("read response");
        buf.trim_end().to_string()
    }
}

fn recommend_line(customer: &[Sale]) -> String {
    let sales: Vec<String> = customer
        .iter()
        .map(|s| format!("[{},{},{}]", s.item.0, s.code.0, s.qty))
        .collect();
    format!(r#"{{"op":"recommend","sales":[{}]}}"#, sales.join(","))
}

fn expected_line(model: &RuleModel, customer: &[Sale]) -> String {
    let matcher = Matcher::new(model);
    let rec = matcher.recommend(customer);
    render(&obj(vec![
        ("ok", Value::Bool(true)),
        ("degraded", Value::Bool(false)),
        ("recs", Value::Seq(vec![rec_value(model, &rec)])),
    ]))
}

fn assert_serves(daemon: &Daemon, model: &RuleModel, customers: &[Vec<Sale>], at: &str) {
    let mut c = daemon.connect();
    for customer in customers {
        assert_eq!(
            c.send(&recommend_line(customer)),
            expected_line(model, customer),
            "recovered daemon diverges from the never-crashed model ({at})"
        );
    }
}

/// kill -9 the real daemon after every stage of
/// ingest → checkpoint(+compact) → ingest, restarting on the same log
/// and checkpoint each time. Every recovered daemon must answer
/// byte-identically to the model a never-crashed process would serve.
#[test]
fn sigkilled_daemon_recovers_byte_identically_at_every_stage() {
    let dir = tmp_dir("sigkill");
    let full = dir.join("full.json").display().to_string();
    let head = dir.join("head.json").display().to_string();
    let tail = dir.join("tail.json").display().to_string();
    let log = dir.join("sales.log").display().to_string();
    let ck = dir.join("ck.pmck").display().to_string();
    let addr_file = dir.join("addr.txt");

    let out = Command::new(bin())
        .args([
            "gen", "--out", &full, "--txns", "300", "--items", "60", "--seed", "91",
        ])
        .output()
        .expect("gen");
    assert!(out.status.success());
    let out = Command::new(bin())
        .args([
            "split", "--data", &full, "--at", "200", "--head", &head, "--tail", &tail,
        ])
        .output()
        .expect("split");
    assert!(out.status.success());

    let head_data = TransactionSet::from_json(&std::fs::read_to_string(&head).unwrap()).unwrap();
    let tail_txns: Vec<Transaction> =
        serde_json::from_str(&std::fs::read_to_string(&tail).unwrap()).unwrap();
    let (b1, b2) = tail_txns.split_at(50);
    let mut mid_data = head_data.clone();
    mid_data.extend_from(b1).unwrap();
    let mut full_data = mid_data.clone();
    full_data.extend_from(b2).unwrap();
    let model_mid = cli_pipeline().fit(&mid_data);
    let model_full = cli_pipeline().fit(&full_data);
    let customers: Vec<Vec<Sale>> = full_data.transactions()[260..270]
        .iter()
        .map(|t| t.non_target_sales().to_vec())
        .collect();

    // Stage 1: ingest a durable batch, then die without warning.
    let daemon = Daemon::start(&head, &log, &ck, &addr_file);
    let mut c = daemon.connect();
    let resp = c.send(&pm_serve::protocol::ingest_line(None, b1));
    assert!(resp.contains(r#""op":"ingested""#), "{resp}");
    daemon.kill();

    // Restart replays the log (no checkpoint yet) — same model.
    let daemon = Daemon::start(&head, &log, &ck, &addr_file);
    assert_serves(&daemon, &model_mid, &customers, "after SIGKILL post-ingest");

    // Stage 2: checkpoint (seals + compacts), then die.
    let mut c = daemon.connect();
    let resp = c.send(r#"{"op":"checkpoint"}"#);
    assert!(resp.contains(r#""op":"checkpointed""#), "{resp}");
    assert!(resp.contains(r#""dropped":1"#), "{resp}");
    daemon.kill();

    // Restart restores the envelope with an empty log tail.
    let daemon = Daemon::start(&head, &log, &ck, &addr_file);
    assert_serves(
        &daemon,
        &model_mid,
        &customers,
        "after SIGKILL post-checkpoint",
    );

    // Stage 3: ingest on top of the checkpoint, then die.
    let mut c = daemon.connect();
    let resp = c.send(&pm_serve::protocol::ingest_line(None, b2));
    assert!(resp.contains(r#""op":"ingested""#), "{resp}");
    daemon.kill();

    // Restart restores the envelope and replays the one tail record.
    let daemon = Daemon::start(&head, &log, &ck, &addr_file);
    assert_serves(
        &daemon,
        &model_full,
        &customers,
        "after SIGKILL post-tail-ingest",
    );

    // The survivor still checkpoints and shuts down cleanly.
    let mut c = daemon.connect();
    let resp = c.send(r#"{"op":"checkpoint"}"#);
    assert!(resp.contains(r#""op":"checkpointed""#), "{resp}");
    daemon.shutdown(&mut c);
    std::fs::remove_dir_all(&dir).ok();
}
