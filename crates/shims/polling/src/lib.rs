//! Offline shim for the `polling` crate: OS readiness notification for
//! many file descriptors at once.
//!
//! This is the one crate in the workspace allowed to contain `unsafe`
//! code — every other crate (including `pm-serve`, whose reactor is the
//! main consumer) keeps `#![deny(unsafe_code)]` and drives readiness
//! exclusively through the safe [`Poller`] API exposed here. The unsafe
//! surface is small and auditable: raw `extern "C"` declarations of the
//! handful of POSIX calls involved (`epoll_*`, `poll`, `pipe`, `read`,
//! `write`, `close`) and the calls themselves.
//!
//! Two backends:
//!
//! * **epoll** (Linux, the default) — one `epoll` instance per
//!   [`Poller`]; `add`/`modify`/`delete` are O(1) syscalls and waiting
//!   is O(ready), so tens of thousands of mostly-idle connections cost
//!   nothing per wakeup;
//! * **poll** (portable fallback) — interest is kept in a map and every
//!   [`Poller::wait`] rebuilds a `pollfd` array, O(registered) per
//!   wakeup. Correct everywhere POSIX; selected automatically off
//!   Linux, or forced with `PM_POLL_BACKEND=poll` (or
//!   [`Poller::new_poll_fallback`]) for testing the fallback on Linux.
//!
//! Deviations from the real `polling` crate, deliberate and documented:
//! interest is **level-triggered and persistent** (no oneshot re-arm
//! dance), `add` is a safe method (the poller only ever holds raw fd
//! *numbers*; registering an fd that is later closed without `delete`
//! yields spurious events or `EBADF`, never memory unsafety), and
//! [`Poller::notify`] is implemented with a self-pipe on both backends.

#![warn(missing_docs)]

use std::io;
use std::os::raw::{c_int, c_void};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::Mutex;
use std::time::Duration;

mod ffi {
    #![allow(non_camel_case_types)]
    use std::os::raw::{c_int, c_void};

    // On x86-64 the kernel ABI packs epoll_event (12 bytes); on other
    // architectures it has natural C layout.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct epoll_event {
        pub events: u32,
        pub u64: u64,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct pollfd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLL_CLOEXEC: c_int = 0o2000000;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    pub const O_NONBLOCK: c_int = 0o4000;
    pub const O_CLOEXEC: c_int = 0o2000000;

    extern "C" {
        #[cfg(target_os = "linux")]
        pub fn epoll_create1(flags: c_int) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut epoll_event,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
        #[cfg(not(target_os = "linux"))]
        pub fn pipe(fds: *mut c_int) -> c_int;
        #[cfg(not(target_os = "linux"))]
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        pub fn poll(fds: *mut pollfd, nfds: std::os::raw::c_ulong, timeout: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
    }
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Interest in (or readiness of) a registered source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The caller-chosen key the source was registered with.
    pub key: usize,
    /// Readable interest / readiness.
    pub readable: bool,
    /// Writable interest / readiness.
    pub writable: bool,
}

impl Event {
    /// Readable-only interest.
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Writable-only interest.
    pub fn writable(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Readable and writable interest.
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// No interest (keeps the registration alive for a later `modify`).
    pub fn none(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }
}

/// Reusable buffer of events delivered by [`Poller::wait`].
#[derive(Debug, Default)]
pub struct Events {
    inner: Vec<Event>,
}

impl Events {
    /// An empty buffer.
    pub fn new() -> Events {
        Events::default()
    }

    /// The delivered events, in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.inner.iter().copied()
    }

    /// Number of delivered events.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when no events were delivered.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Discard all events (done automatically by [`Poller::wait`]).
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

/// Key reserved for the internal notify pipe; user registrations must
/// stay below it (asserted in [`Poller::add`]).
const NOTIFY_KEY: usize = usize::MAX;

/// How many kernel events one `wait` call retrieves at most; `wait`
/// loops are expected to call again, so this only bounds one syscall.
const WAIT_BATCH: usize = 1024;

/// A self-pipe: `notify()` writes a byte, the read end is registered in
/// the backend, `drain()` empties it after a wakeup.
#[derive(Debug)]
struct NotifyPipe {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl NotifyPipe {
    fn new() -> io::Result<NotifyPipe> {
        let mut fds = [0 as c_int; 2];
        #[cfg(target_os = "linux")]
        // SAFETY: pipe2 writes exactly two fds into the array provided.
        cvt(unsafe { ffi::pipe2(fds.as_mut_ptr(), ffi::O_NONBLOCK | ffi::O_CLOEXEC) })?;
        #[cfg(not(target_os = "linux"))]
        {
            // SAFETY: pipe writes exactly two fds into the array.
            cvt(unsafe { ffi::pipe(fds.as_mut_ptr()) })?;
            const F_SETFL: c_int = 4;
            for fd in fds {
                // SAFETY: plain fcntl on a fd we just created.
                cvt(unsafe { ffi::fcntl(fd, F_SETFL, ffi::O_NONBLOCK) })?;
            }
        }
        Ok(NotifyPipe {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    fn notify(&self) {
        let byte = 1u8;
        // SAFETY: writing one byte from a live stack buffer. A full pipe
        // (EAGAIN) means a wakeup is already pending — success either way.
        let _ = unsafe { ffi::write(self.write_fd, (&byte as *const u8).cast::<c_void>(), 1) };
    }

    fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: reading into a live stack buffer of the stated size.
            let n =
                unsafe { ffi::read(self.read_fd, buf.as_mut_ptr().cast::<c_void>(), buf.len()) };
            if n <= 0 {
                return;
            }
        }
    }
}

impl Drop for NotifyPipe {
    fn drop(&mut self) {
        // SAFETY: closing fds this struct owns exclusively.
        unsafe {
            ffi::close(self.read_fd);
            ffi::close(self.write_fd);
        }
    }
}

#[derive(Debug)]
enum Backend {
    #[cfg(target_os = "linux")]
    Epoll { epfd: RawFd },
    Poll {
        /// fd → (key, readable, writable); rebuilt into a pollfd array
        /// on every wait.
        interest: Mutex<Vec<(RawFd, Event)>>,
    },
}

/// A readiness poller over many registered file descriptors.
///
/// `add`/`modify`/`delete`/`notify` are callable from any thread;
/// `wait` is intended for the single owning reactor thread.
#[derive(Debug)]
pub struct Poller {
    backend: Backend,
    pipe: NotifyPipe,
    /// Serializes concurrent `wait` calls on the poll backend (the epoll
    /// backend needs no lock).
    wait_lock: Mutex<()>,
}

impl Poller {
    /// A poller on the platform's best backend (`epoll` on Linux unless
    /// `PM_POLL_BACKEND=poll` is set, `poll` elsewhere).
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            if std::env::var("PM_POLL_BACKEND").as_deref() != Ok("poll") {
                return Poller::new_epoll();
            }
        }
        Poller::new_poll_fallback()
    }

    #[cfg(target_os = "linux")]
    fn new_epoll() -> io::Result<Poller> {
        // SAFETY: plain syscall; the returned fd is owned by the Poller.
        let epfd = cvt(unsafe { ffi::epoll_create1(ffi::EPOLL_CLOEXEC) })?;
        let pipe = NotifyPipe::new()?;
        let poller = Poller {
            backend: Backend::Epoll { epfd },
            pipe,
            wait_lock: Mutex::new(()),
        };
        poller.ctl(
            ffi::EPOLL_CTL_ADD,
            poller.pipe.read_fd,
            Some(Event::readable(NOTIFY_KEY)),
        )?;
        Ok(poller)
    }

    /// A poller on the portable `poll(2)` backend, regardless of
    /// platform — for tests and benchmarks of the fallback path.
    pub fn new_poll_fallback() -> io::Result<Poller> {
        let pipe = NotifyPipe::new()?;
        Ok(Poller {
            backend: Backend::Poll {
                interest: Mutex::new(Vec::new()),
            },
            pipe,
            wait_lock: Mutex::new(()),
        })
    }

    /// The backend in use (`"epoll"` or `"poll"`).
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { .. } => "epoll",
            Backend::Poll { .. } => "poll",
        }
    }

    #[cfg(target_os = "linux")]
    fn ctl(&self, op: c_int, fd: RawFd, interest: Option<Event>) -> io::Result<()> {
        let Backend::Epoll { epfd } = &self.backend else {
            unreachable!("ctl is epoll-only");
        };
        let mut ev = ffi::epoll_event { events: 0, u64: 0 };
        if let Some(i) = interest {
            ev.events = (if i.readable { ffi::EPOLLIN } else { 0 })
                | (if i.writable { ffi::EPOLLOUT } else { 0 });
            ev.u64 = i.key as u64;
        }
        // SAFETY: `ev` is a live, correctly-laid-out epoll_event; DEL
        // tolerates (and ignores) the event pointer.
        cvt(unsafe { ffi::epoll_ctl(*epfd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Register `source` with the given interest under `interest.key`.
    /// The caller must `delete` the source before closing it; a stale
    /// registration yields spurious events, never unsafety.
    pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        assert!(interest.key != NOTIFY_KEY, "key usize::MAX is reserved");
        let fd = source.as_raw_fd();
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { .. } => self.ctl(ffi::EPOLL_CTL_ADD, fd, Some(interest)),
            Backend::Poll { interest: map } => {
                let mut map = map.lock().unwrap_or_else(|e| e.into_inner());
                if map.iter().any(|(f, _)| *f == fd) {
                    return Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        "fd already registered",
                    ));
                }
                map.push((fd, interest));
                Ok(())
            }
        }
    }

    /// Replace the interest of an already-registered source.
    pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        assert!(interest.key != NOTIFY_KEY, "key usize::MAX is reserved");
        let fd = source.as_raw_fd();
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { .. } => self.ctl(ffi::EPOLL_CTL_MOD, fd, Some(interest)),
            Backend::Poll { interest: map } => {
                let mut map = map.lock().unwrap_or_else(|e| e.into_inner());
                match map.iter_mut().find(|(f, _)| *f == fd) {
                    Some((_, ev)) => {
                        *ev = interest;
                        Ok(())
                    }
                    None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
                }
            }
        }
    }

    /// Remove a source's registration.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        let fd = source.as_raw_fd();
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { .. } => self.ctl(ffi::EPOLL_CTL_DEL, fd, None),
            Backend::Poll { interest: map } => {
                let mut map = map.lock().unwrap_or_else(|e| e.into_inner());
                let before = map.len();
                map.retain(|(f, _)| *f != fd);
                if map.len() == before {
                    return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
                }
                Ok(())
            }
        }
    }

    /// Wake a concurrent or future [`Poller::wait`] call immediately.
    pub fn notify(&self) -> io::Result<()> {
        self.pipe.notify();
        Ok(())
    }

    /// Block until at least one registered source is ready, `timeout`
    /// elapses (`None` = forever), or [`Poller::notify`] is called.
    /// Returns the number of events delivered into `events` (0 on
    /// timeout or notify — spurious wakeups are allowed and callers
    /// must tolerate them).
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let timeout_ms: c_int = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(c_int::MAX as u128) as c_int,
        };
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                let mut buf = [ffi::epoll_event { events: 0, u64: 0 }; WAIT_BATCH];
                // SAFETY: `buf` is a live array of WAIT_BATCH events.
                let n = unsafe {
                    ffi::epoll_wait(*epfd, buf.as_mut_ptr(), WAIT_BATCH as c_int, timeout_ms)
                };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        return Ok(0); // spurious wakeup
                    }
                    return Err(err);
                }
                let mut notified = false;
                for ev in buf.iter().take(n as usize) {
                    let key = { ev.u64 } as usize;
                    if key == NOTIFY_KEY {
                        notified = true;
                        continue;
                    }
                    let bits = { ev.events };
                    // ERR/HUP surface as readable+writable so the owner
                    // discovers the condition on its next I/O attempt.
                    let errish = bits & (ffi::EPOLLERR | ffi::EPOLLHUP) != 0;
                    events.inner.push(Event {
                        key,
                        readable: bits & ffi::EPOLLIN != 0 || errish,
                        writable: bits & ffi::EPOLLOUT != 0 || errish,
                    });
                }
                if notified {
                    self.pipe.drain();
                }
                Ok(events.len())
            }
            Backend::Poll { interest } => {
                let _wait = self.wait_lock.lock().unwrap_or_else(|e| e.into_inner());
                let mut fds: Vec<ffi::pollfd> = Vec::new();
                let mut keys: Vec<usize> = Vec::new();
                fds.push(ffi::pollfd {
                    fd: self.pipe.read_fd,
                    events: ffi::POLLIN,
                    revents: 0,
                });
                keys.push(NOTIFY_KEY);
                {
                    let map = interest.lock().unwrap_or_else(|e| e.into_inner());
                    for (fd, ev) in map.iter() {
                        fds.push(ffi::pollfd {
                            fd: *fd,
                            events: (if ev.readable { ffi::POLLIN } else { 0 })
                                | (if ev.writable { ffi::POLLOUT } else { 0 }),
                            revents: 0,
                        });
                        keys.push(ev.key);
                    }
                }
                // SAFETY: `fds` is a live, correctly-laid-out pollfd array.
                let n = unsafe { ffi::poll(fds.as_mut_ptr(), fds.len() as _, timeout_ms) };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        return Ok(0);
                    }
                    return Err(err);
                }
                for (pfd, &key) in fds.iter().zip(&keys) {
                    if pfd.revents == 0 {
                        continue;
                    }
                    if key == NOTIFY_KEY {
                        self.pipe.drain();
                        continue;
                    }
                    let errish = pfd.revents & (ffi::POLLERR | ffi::POLLHUP) != 0;
                    events.inner.push(Event {
                        key,
                        readable: pfd.revents & ffi::POLLIN != 0 || errish,
                        writable: pfd.revents & ffi::POLLOUT != 0 || errish,
                    });
                }
                Ok(events.len())
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if let Backend::Epoll { epfd } = &self.backend {
            // SAFETY: closing the epoll fd this struct owns exclusively.
            unsafe {
                ffi::close(*epfd);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    fn backends() -> Vec<Poller> {
        let mut v = vec![Poller::new_poll_fallback().unwrap()];
        #[cfg(target_os = "linux")]
        v.push(Poller::new_epoll().unwrap());
        v
    }

    #[test]
    fn readable_readiness_is_reported_once_data_arrives() {
        for poller in backends() {
            let (a, mut b) = pair();
            poller.add(&a, Event::readable(7)).unwrap();
            let mut events = Events::new();

            // Nothing to read yet: zero-timeout wait delivers nothing.
            poller
                .wait(&mut events, Some(Duration::from_millis(0)))
                .unwrap();
            assert!(events.is_empty(), "{}", poller.backend_name());

            b.write_all(b"x").unwrap();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(n, 1, "{}", poller.backend_name());
            let ev = events.iter().next().unwrap();
            assert_eq!(ev.key, 7);
            assert!(ev.readable);
            poller.delete(&a).unwrap();
        }
    }

    #[test]
    fn modify_switches_interest_and_writable_fires() {
        for poller in backends() {
            let (a, _b) = pair();
            poller.add(&a, Event::none(3)).unwrap();
            let mut events = Events::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(0)))
                .unwrap();
            assert!(events.is_empty());

            // An idle socket's send buffer is writable immediately.
            poller.modify(&a, Event::writable(3)).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events.len(), 1, "{}", poller.backend_name());
            assert!(events.iter().next().unwrap().writable);
            poller.delete(&a).unwrap();
        }
    }

    #[test]
    fn notify_wakes_a_blocked_wait() {
        for poller in backends() {
            let poller = std::sync::Arc::new(poller);
            let waker = std::sync::Arc::clone(&poller);
            let t = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                waker.notify().unwrap();
            });
            let mut events = Events::new();
            let start = std::time::Instant::now();
            // Without the notify this would block for the full 10s.
            poller
                .wait(&mut events, Some(Duration::from_secs(10)))
                .unwrap();
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "{}",
                poller.backend_name()
            );
            t.join().unwrap();
        }
    }

    #[test]
    fn peer_close_reports_readable_for_eof_detection() {
        for poller in backends() {
            let (a, b) = pair();
            poller.add(&a, Event::readable(1)).unwrap();
            drop(b);
            let mut events = Events::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.key == 1 && e.readable),
                "{}",
                poller.backend_name()
            );
            // The owner then observes EOF on read.
            let mut a = a;
            let mut buf = [0u8; 8];
            a.set_nonblocking(false).unwrap();
            assert_eq!(a.read(&mut buf).unwrap(), 0);
            poller.delete(&a).unwrap();
        }
    }

    #[test]
    fn double_add_and_missing_delete_are_errors_on_poll_backend() {
        let poller = Poller::new_poll_fallback().unwrap();
        let (a, b) = pair();
        poller.add(&a, Event::readable(1)).unwrap();
        assert!(poller.add(&a, Event::readable(2)).is_err());
        assert!(poller.delete(&b).is_err());
        assert!(poller.modify(&b, Event::readable(9)).is_err());
        poller.delete(&a).unwrap();
    }
}
