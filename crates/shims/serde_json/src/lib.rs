//! Offline shim for the `serde_json` 1 API surface used by this
//! workspace: [`to_string`], [`to_string_pretty`], and [`from_str`],
//! bridged through the `serde` shim's `Value` tree.
//!
//! Formatting matches real serde_json where it is observable here:
//! compact output has no whitespace, pretty output indents by two
//! spaces, floats print at shortest round-trip precision (Rust's `{}`
//! float `Display`) with a trailing `.0` forced onto integral floats,
//! and non-finite floats serialize as `null`.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON (de)serialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.ser_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.ser_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(T::de_value(&v)?)
}

// ---- printer ----

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_str(out, s),
        Value::Seq(s) if s.is_empty() => out.push_str("[]"),
        Value::Seq(s) => {
            out.push('[');
            for (i, item) in s.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(m) if m.is_empty() => out.push_str("{}"),
        Value::Map(m) => {
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_str(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = f.to_string();
    out.push_str(&s);
    // `{}` prints integral floats bare ("3"); force serde_json's "3.0".
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("JSON parse error at byte {}: {}", self.pos, msg))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            // hex4 advanced past the digits already.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the maximal run of plain bytes in one
                    // chunk. The stop bytes (`"` and `\`) are ASCII, so
                    // they can never split a multi-byte scalar and the
                    // chunk boundaries are always char boundaries;
                    // validating only the chunk keeps the whole parse
                    // linear even for multi-megabyte strings.
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(i) = stripped.parse::<i64>() {
                    return Ok(if i == 0 {
                        Value::U64(0)
                    } else {
                        Value::I64(-i)
                    });
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;

    fn round_trip(v: &Value) -> Value {
        #[derive(Debug)]
        struct Raw(Value);
        impl Serialize for Raw {
            fn ser_value(&self) -> Value {
                self.0.clone()
            }
        }
        impl Deserialize for Raw {
            fn de_value(v: &Value) -> Result<Self, serde::Error> {
                Ok(Raw(v.clone()))
            }
        }
        let s = to_string(&Raw(v.clone())).unwrap();
        from_str::<Raw>(&s).unwrap().0
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::U64(0),
            Value::U64(u64::MAX),
            Value::I64(-42),
            Value::F64(1.5),
            Value::F64(-0.0625),
            Value::F64(1e-30),
            Value::Str("he\"llo\n\\ λ 🦀".to_string()),
        ] {
            assert_eq!(round_trip(&v), v, "{v:?}");
        }
    }

    #[test]
    fn float_shortest_repr_round_trips_exactly() {
        for f in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1.7976931348623157e308] {
            let Value::F64(back) = round_trip(&Value::F64(f)) else {
                panic!("float came back as non-float");
            };
            assert_eq!(back.to_bits(), f.to_bits());
        }
    }

    #[test]
    fn integral_float_keeps_float_type() {
        let mut s = String::new();
        write_f64(&mut s, 3.0);
        assert_eq!(s, "3.0");
        assert_eq!(round_trip(&Value::F64(3.0)), Value::F64(3.0));
    }

    #[test]
    fn nonfinite_floats_serialize_as_null() {
        let mut s = String::new();
        write_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn compact_formatting_matches_serde_json() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::U64(1)),
            (
                "b".to_string(),
                Value::Seq(vec![Value::Bool(false), Value::Null]),
            ),
        ]);
        let mut out = String::new();
        write_value(&mut out, &v, None, 0);
        assert_eq!(out, r#"{"a":1,"b":[false,null]}"#);
    }

    #[test]
    fn pretty_formatting() {
        let v = Value::Map(vec![("a".to_string(), Value::Seq(vec![Value::U64(1)]))]);
        let mut out = String::new();
        write_value(&mut out, &v, Some(2), 0);
        assert_eq!(out, "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v: Vec<String> = from_str(" [ \"a\\u0041\\ud83e\\udd80\" , \"b\" ] ").unwrap();
        assert_eq!(v, vec!["aA🦀".to_string(), "b".to_string()]);
    }

    #[test]
    fn long_strings_with_interleaved_escapes_parse_chunked() {
        // The parser copies plain runs in chunks between escapes; make
        // sure chunk stitching is seamless around escapes, multi-byte
        // scalars, and string boundaries.
        let plain = "αβγ test run ".repeat(1000);
        let original = format!("{plain}\"quote\\slash\n{plain}🦀");
        let v = round_trip(&Value::Str(original.clone()));
        assert_eq!(v, Value::Str(original));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<u32>>("[1,]").is_err());
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
