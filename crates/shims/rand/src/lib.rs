//! Offline shim for the `rand` 0.8 API surface used by this workspace.
//!
//! [`rngs::StdRng`] is a xoshiro256++ generator seeded through SplitMix64
//! — statistically solid for the samplers and shuffles here, but **not**
//! stream-compatible with upstream rand's ChaCha12 `StdRng`. The
//! workspace only depends on per-seed determinism, which this provides.

/// Seedable random generators.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A uniform sample of `Self` from raw generator output ("standard"
/// distribution of rand).
pub trait Standard: Sized {
    /// Draw one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// A range admissible for [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// A uniform sample of `T` (`f64` in `[0,1)`, full-range integers,
    /// fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// A uniform sample from `range` (half-open `a..b` or inclusive
    /// `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0,1]: {p}");
        u64_to_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Map a raw 64-bit output to `[0, 1)` with 53 bits of precision.
#[inline]
fn u64_to_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic per seed; see the crate docs for the
    /// compatibility caveat.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per Vigna's reference seeding advice.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        u64_to_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

/// Uniform integer in `[0, span)` by widening multiply (Lemire); the
/// modulo bias of `span ≪ 2⁶⁴` is below observability for test workloads.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let v = self.start + u64_to_f64(rng.next_u64()) * (self.end - self.start);
        // Floating rounding may land exactly on `end`; clamp back inside.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Slice shuffling.
pub mod seq {
    use super::{Rng, RngCore};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let x = rng.gen_range(1usize..=3);
            assert!((1..=3).contains(&x));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((27_000..33_000).contains(&hits), "{hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5usize..5);
    }
}
