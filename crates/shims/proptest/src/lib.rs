//! Offline shim for the `proptest` 1 API surface used by this
//! workspace: the `proptest!` test macro, `prop_assert*!`, and a
//! [`Strategy`] algebra (ranges, tuples, `Just`, `prop_map`,
//! `prop_flat_map`, `collection::vec`, `bool::ANY`, `num::*::ANY`).
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its case number and seed;
//!   inputs are reproducible (seeds derive deterministically from the
//!   test name and case index) but not minimized.
//! * Case count is [`ProptestConfig::cases`] (default 256), overridable
//!   with the `PROPTEST_CASES` environment variable like upstream.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// The generator handed to strategies; fixed concrete type to keep the
/// strategy algebra object-simple.
pub type TestRng = StdRng;

/// Subset of proptest's run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Derive a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn gen_value(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.gen_value(rng)).gen_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($t:ident $idx:tt),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

/// Collection strategies.
pub mod collection {
    use super::{Range, Rng, Strategy, TestRng};

    /// Length specifications accepted by [`vec`] (proptest's
    /// `SizeRange` conversions): an exact `usize` or a `usize` range.
    pub trait IntoSizeRange {
        /// The equivalent half-open range.
        fn into_size_range(self) -> Range<usize>;
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> Range<usize> {
            self..self + 1
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn into_size_range(self) -> Range<usize> {
            self
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn into_size_range(self) -> Range<usize> {
            *self.start()..*self.end() + 1
        }
    }

    /// A `Vec` of `element` values with length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into_size_range(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// `bool` strategies.
pub mod bool {
    use super::{Rng, Strategy, TestRng};

    /// Strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;
        fn gen_value(&self, rng: &mut TestRng) -> bool {
            rng.gen()
        }
    }

    /// A fair coin.
    pub const ANY: Any = Any;
}

/// Numeric full-range strategies (`proptest::num::u64::ANY` etc.).
pub mod num {
    macro_rules! num_any_mod {
        ($($m:ident: $t:ty),*) => {$(
            pub mod $m {
                use crate::{Rng, Strategy, TestRng};

                /// Strategy type of [`ANY`].
                #[derive(Debug, Clone, Copy)]
                pub struct Any;

                impl Strategy for Any {
                    type Value = $t;
                    fn gen_value(&self, rng: &mut TestRng) -> $t {
                        rng.gen()
                    }
                }

                /// The full range of the type, uniformly.
                pub const ANY: Any = Any;
            }
        )*};
    }
    num_any_mod!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize,
                 i8: i8, i16: i16, i32: i32, i64: i64, isize: isize);
}

/// Run `f` for each case of a property test; used by the `proptest!`
/// macro expansion, not called directly.
pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(config.cases);
    for case in 0..cases {
        // FNV-1a over the test name, mixed with the case index: stable
        // across runs, distinct across tests.
        let mut seed: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x100000001b3);
        }
        seed = seed.wrapping_add((case as u64).wrapping_mul(0x9e3779b97f4a7c15));
        let mut rng = TestRng::seed_from_u64(seed);
        if let Err(msg) = f(&mut rng) {
            panic!(
                "proptest `{test_name}` failed at case {case}/{cases} (seed {seed:#x}):\n{msg}\n\
                 (offline proptest shim: inputs are reproducible from the seed but not shrunk)"
            );
        }
    }
}

/// Property-test entry macro; see the crate docs for shim caveats.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __pt_config: $crate::ProptestConfig = $cfg;
            let __pt_strats = ( $($strat,)+ );
            $crate::run_cases(&__pt_config, stringify!($name), |__pt_rng| {
                let ( $($pat,)+ ) = $crate::Strategy::gen_value(&__pt_strats, __pt_rng);
                let mut __pt_case = || -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    ::std::result::Result::Ok(())
                };
                __pt_case()
            });
        }
    )*};
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "{} at {}:{}", format!($($fmt)*), file!(), line!()
            ));
        }
    };
}

/// `assert_eq!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__pa, __pb) = (&$a, &$b);
        $crate::prop_assert!(
            *__pa == *__pb,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            __pa,
            __pb
        );
    }};
}

/// `assert_ne!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__pa, __pb) = (&$a, &$b);
        $crate::prop_assert!(
            *__pa != *__pb,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            __pa
        );
    }};
}

/// The glob-import surface matching `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2i64..9, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2..9).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec((0u32..10, crate::bool::ANY), 2..6),
            j in Just(41u8).prop_map(|x| x + 1),
            (a, b) in (0usize..5).prop_flat_map(|n| (Just(n), n..n + 3)),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|(x, _)| *x < 10));
            prop_assert_eq!(j, 42);
            prop_assert!(b >= a && b < a + 3);
        }
    }

    #[test]
    fn failing_case_reports_seed() {
        let err = std::panic::catch_unwind(|| {
            crate::run_cases(&ProptestConfig::with_cases(5), "doomed", |_rng| {
                Err("nope".to_string())
            });
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("doomed") && msg.contains("seed"), "{msg}");
    }

    #[test]
    fn cases_are_deterministic_per_test_name() {
        let mut runs = Vec::new();
        for _ in 0..2 {
            let mut drawn = Vec::new();
            crate::run_cases(&ProptestConfig::with_cases(8), "det", |rng| {
                drawn.push((0u64..1_000_000).gen_value(rng));
                Ok(())
            });
            runs.push(drawn);
        }
        assert_eq!(runs[0], runs[1]);
        assert!(runs[0].windows(2).any(|w| w[0] != w[1]));
    }
}
