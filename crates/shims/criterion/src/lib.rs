//! Offline shim for the `criterion` 0.5 API surface used by this
//! workspace: `criterion_group!`/`criterion_main!`, `Criterion`,
//! benchmark groups with `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, and `black_box`.
//!
//! Measurement is deliberately simple: after a warm-up, each benchmark
//! takes `sample_size` wall-clock samples and reports the min / mean /
//! median per-iteration time to stdout. No statistical outlier
//! analysis, no `target/criterion` reports, no baseline comparisons —
//! the shim exists so `cargo bench` runs and yields honest comparable
//! wall-clock numbers in this offline environment.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// An opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark runner configuration and registry.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Match upstream defaults except sample count (kept small; the
        // shim has no statistics that would need 100 samples). The
        // benchmark filter comes from the CLI like upstream: the first
        // non-flag argument is a substring filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            filter,
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Set the wall-clock budget for the timed samples of one benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Set the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Run `f` as a benchmark named `id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        self.run_one(id, f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            criterion: self,
        }
    }

    fn skip(&self, id: &str) -> bool {
        matches!(&self.filter, Some(f) if !id.contains(f.as_str()))
    }

    fn run_one<F: FnOnce(&mut Bencher)>(&mut self, id: &str, f: F) {
        run_bench(
            id,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            self.skip(id),
            f,
        );
    }
}

/// A benchmark identifier, `"function"` or `"function/parameter"`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `"{function}/{parameter}"`.
    pub fn new<P: Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only id (the group name supplies the function part).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Set the wall-clock budget per benchmark in this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Run a parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_bench(
            &full,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            self.criterion.skip(&full),
            |b| f(b, input),
        );
        self
    }

    /// Run an unparameterized benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(
            &full,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            self.criterion.skip(&full),
            f,
        );
        self
    }

    /// End the group (formatting no-op in the shim).
    pub fn finish(self) {}
}

/// The timing handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Mean per-iteration nanoseconds per sample; filled by `iter`.
    samples: Vec<f64>,
}

impl Bencher {
    /// Measure `f`, called repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, also calibrating iterations per sample.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(f());
            warm_iters += 1;
            // A single extremely slow iteration should not pin us in
            // warm-up for its full multiple.
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        let budget_ns = self.measurement_time.as_nanos() as f64;
        let iters_per_sample =
            (budget_ns / self.sample_size as f64 / per_iter.max(1.0)).clamp(1.0, 1e9) as u64;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            self.samples.push(ns);
        }
    }
}

fn run_bench<F: FnOnce(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    skip: bool,
    f: F,
) {
    if skip {
        return;
    }
    let mut b = Bencher {
        sample_size,
        measurement_time,
        warm_up_time,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<50} (no measurement)");
        return;
    }
    let mut sorted = b.samples.clone();
    sorted.sort_by(f64::total_cmp);
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    println!(
        "{id:<50} time: [min {} mean {} median {}]",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(median)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Define a benchmark group function; both upstream invocation forms are
/// accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format_like_upstream() {
        assert_eq!(BenchmarkId::new("quest", 500).id, "quest/500");
        assert_eq!(BenchmarkId::from_parameter("on").id, "on");
        assert_eq!(BenchmarkId::from_parameter("x".to_string()).id, "x");
    }

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        // Force no filter regardless of the test harness's own CLI args.
        c.filter = None;
        let mut observed = 0usize;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(2u64 + 2));
            observed = b.samples.len();
        });
        assert_eq!(observed, 3);
    }

    #[test]
    fn filter_skips_mismatches() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        c.filter = Some("matches-nothing-zzz".to_string());
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| 1u32);
            ran = true;
        });
        assert!(!ran);
    }
}
