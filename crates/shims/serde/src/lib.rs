//! Offline shim for the `serde` 1 API surface used by this workspace.
//!
//! Real serde serializes through visitor traits; every use in this
//! workspace goes `#[derive(Serialize, Deserialize)]` →
//! `serde_json::{to_string, from_str}`, so the shim routes both traits
//! through one owned JSON-like [`Value`] tree instead. The derive macros
//! live in the sibling `serde_derive` shim and generate implementations
//! of the traits below.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// An owned JSON-like document tree — the interchange format between the
/// `Serialize`/`Deserialize` shims and `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A negative integer (always `< 0`; non-negatives use [`Value::U64`]).
    I64(i64),
    /// A non-negative integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object, in insertion order.
    Map(Vec<(String, Value)>),
}

/// (De)serialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// An error carrying `msg`.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// The value tree for `self`.
    fn ser_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from a value tree.
    fn de_value(v: &Value) -> Result<Self, Error>;
}

/// Look up struct field `name` in an object; a missing field
/// deserializes from `Null` (so `Option` fields default to `None`, as in
/// real serde) and otherwise reports the missing field.
pub fn field<T: Deserialize>(map: &[(String, Value)], name: &str) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::de_value(v).map_err(|e| Error(format!("field {name}: {e}"))),
        None => T::de_value(&Value::Null).map_err(|_| Error(format!("missing field {name}"))),
    }
}

/// The object entries of `v`, or a type error mentioning `what`.
pub fn as_map<'v>(v: &'v Value, what: &str) -> Result<&'v [(String, Value)], Error> {
    match v {
        Value::Map(m) => Ok(m),
        other => Err(Error(format!("{what}: expected object, got {other:?}"))),
    }
}

/// The array elements of `v` with exactly `n` entries, or an error
/// mentioning `what`.
pub fn as_seq_n<'v>(v: &'v Value, n: usize, what: &str) -> Result<&'v [Value], Error> {
    match v {
        Value::Seq(s) if s.len() == n => Ok(s),
        Value::Seq(s) => Err(Error(format!(
            "{what}: expected {n} elements, got {}",
            s.len()
        ))),
        other => Err(Error(format!("{what}: expected array, got {other:?}"))),
    }
}

// ---- Serialize impls for std types ----

// `Value` round-trips through itself, so callers can parse arbitrary
// JSON (`serde_json::from_str::<serde::Value>(..)`) without committing
// to a schema — mirroring real serde_json's `Value`.
impl Serialize for Value {
    fn ser_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn de_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 { Value::I64(v) } else { Value::U64(v as u64) }
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn ser_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn ser_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for bool {
    fn ser_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn ser_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn ser_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn ser_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.ser_value(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn ser_value(&self) -> Value {
        self.as_slice().ser_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn ser_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::ser_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn ser_value(&self) -> Value {
        self.as_slice().ser_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn ser_value(&self) -> Value {
        (**self).ser_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn ser_value(&self) -> Value {
        (**self).ser_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn ser_value(&self) -> Value {
        (**self).ser_value()
    }
}

/// `HashMap`s serialize as a key-sorted sequence of `[key, value]`
/// pairs: JSON objects require string keys, and the workspace's hash
/// maps are keyed by structured types. Sorting makes the output
/// independent of hash iteration order.
impl<K: Serialize + Ord + std::hash::Hash + Eq, V: Serialize> Serialize
    for std::collections::HashMap<K, V>
{
    fn ser_value(&self) -> Value {
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Seq(
            entries
                .into_iter()
                .map(|(k, v)| Value::Seq(vec![k.ser_value(), v.ser_value()]))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn ser_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.ser_value()))
                .collect(),
        )
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn ser_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.ser_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

// ---- Deserialize impls for std types ----

fn int_from(v: &Value, what: &str) -> Result<i128, Error> {
    match v {
        Value::U64(u) => Ok(*u as i128),
        Value::I64(i) => Ok(*i as i128),
        Value::F64(f) if f.fract() == 0.0 && f.abs() < 2e18 => Ok(*f as i128),
        other => Err(Error(format!("{what}: expected integer, got {other:?}"))),
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn de_value(v: &Value) -> Result<Self, Error> {
                let i = int_from(v, stringify!($t))?;
                <$t>::try_from(i).map_err(|_| {
                    Error(format!(concat!(stringify!($t), " out of range: {}"), i))
                })
            }
        }
    )*};
}
de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn de_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(u) => Ok(*u as f64),
            Value::I64(i) => Ok(*i as f64),
            other => Err(Error(format!("f64: expected number, got {other:?}"))),
        }
    }
}

impl Deserialize for f32 {
    fn de_value(v: &Value) -> Result<Self, Error> {
        f64::de_value(v).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn de_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("bool: expected bool, got {other:?}"))),
        }
    }
}

impl Deserialize for String {
    fn de_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("String: expected string, got {other:?}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn de_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::de_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn de_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(s) => s.iter().map(T::de_value).collect(),
            other => Err(Error(format!("Vec: expected array, got {other:?}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn de_value(v: &Value) -> Result<Self, Error> {
        T::de_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn de_value(v: &Value) -> Result<Self, Error> {
        T::de_value(v).map(Arc::new)
    }
}

impl<K: Deserialize + std::hash::Hash + Eq, V: Deserialize> Deserialize
    for std::collections::HashMap<K, V>
{
    fn de_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(s) => s
                .iter()
                .map(|pair| {
                    let p = as_seq_n(pair, 2, "HashMap entry")?;
                    Ok((K::de_value(&p[0])?, V::de_value(&p[1])?))
                })
                .collect(),
            other => Err(Error(format!(
                "HashMap: expected array of pairs, got {other:?}"
            ))),
        }
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn de_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::de_value(v)?)))
                .collect(),
            other => Err(Error(format!("BTreeMap: expected object, got {other:?}"))),
        }
    }
}

macro_rules! de_tuple {
    ($(($len:literal: $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn de_value(v: &Value) -> Result<Self, Error> {
                let s = as_seq_n(v, $len, "tuple")?;
                Ok(($($t::de_value(&s[$n])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (1: 0 A)
    (2: 0 A, 1 B)
    (3: 0 A, 1 B, 2 C)
    (4: 0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::de_value(&42u32.ser_value()).unwrap(), 42);
        assert_eq!(i64::de_value(&(-7i64).ser_value()).unwrap(), -7);
        assert_eq!(f64::de_value(&1.5f64.ser_value()).unwrap(), 1.5);
        assert!(bool::de_value(&true.ser_value()).unwrap());
        assert_eq!(
            String::de_value(&"hi".to_string().ser_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn options_and_missing_fields() {
        assert_eq!(Option::<u32>::de_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::de_value(&Value::U64(3)).unwrap(), Some(3));
        let m: Vec<(String, Value)> = vec![];
        assert_eq!(field::<Option<u32>>(&m, "x").unwrap(), None);
        assert!(field::<u32>(&m, "x").is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::de_value(&v.ser_value()).unwrap(), v);
        let t = (1u32, "a".to_string(), 2.5f64);
        assert_eq!(<(u32, String, f64)>::de_value(&t.ser_value()).unwrap(), t);
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 9u64);
        assert_eq!(
            BTreeMap::<String, u64>::de_value(&m.ser_value()).unwrap(),
            m
        );
        let a = Arc::new(5u32);
        assert_eq!(*Arc::<u32>::de_value(&a.ser_value()).unwrap(), 5);
    }

    #[test]
    fn integer_coercions_are_checked() {
        assert!(u8::de_value(&Value::U64(300)).is_err());
        assert!(u32::de_value(&Value::I64(-1)).is_err());
        assert_eq!(f64::de_value(&Value::U64(4)).unwrap(), 4.0);
    }
}
