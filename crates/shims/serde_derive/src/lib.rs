//! Offline shim for `serde_derive`: implements
//! `#[derive(Serialize, Deserialize)]` against the workspace's `serde`
//! shim (the `ser_value`/`de_value` traits over `serde::Value`).
//!
//! Built without `syn`/`quote` (unavailable offline): the input is
//! parsed directly from the `proc_macro` token stream and the output is
//! generated as Rust source text. Only the shapes this workspace
//! actually derives are supported — non-generic named structs, tuple
//! structs, and enums with unit/tuple variants — plus the
//! `#[serde(skip)]` field attribute. Anything else panics at compile
//! time with a clear message, which is the desired failure mode for a
//! shim.
//!
//! JSON representation matches real serde's defaults: named structs are
//! objects, one-field tuple structs are transparent newtypes, n-field
//! tuple structs are arrays, unit variants are `"Name"`, newtype
//! variants are `{"Name": value}`, and tuple variants are
//! `{"Name": [..]}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

/// A field of a named struct.
struct NamedField {
    name: String,
    skip: bool,
}

/// The shape of the deriving type.
enum Shape {
    Named(Vec<NamedField>),
    Tuple(usize),
    Unit,
    /// `(variant name, arity)`; arity 0 is a unit variant.
    Enum(Vec<(String, usize)>),
}

struct Input {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_serialize(&input)
        .parse()
        .expect("shim codegen: invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_deserialize(&input)
        .parse()
        .expect("shim codegen: invalid Deserialize impl")
}

// ---- parsing ----

/// Consume any `#[...]` attributes; report whether one was
/// `#[serde(skip)]`.
fn take_attrs(it: &mut TokenIter) -> bool {
    let mut skip = false;
    while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        it.next();
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                if attr_is_serde_skip(g.stream()) {
                    skip = true;
                }
            }
            other => panic!("serde shim derive: expected [...] after #, got {other:?}"),
        }
    }
    skip
}

fn attr_is_serde_skip(attr: TokenStream) -> bool {
    let mut it = attr.into_iter();
    match (it.next(), it.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            let inner: Vec<String> = g.stream().into_iter().map(|t| t.to_string()).collect();
            match inner.as_slice() {
                [s] if s == "skip" => true,
                other => panic!(
                    "serde shim derive supports only #[serde(skip)], got #[serde({})]",
                    other.join(" ")
                ),
            }
        }
        _ => false,
    }
}

/// Consume `pub`, `pub(crate)`, `pub(super)`, ….
fn take_vis(it: &mut TokenIter) {
    if matches!(it.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        it.next();
        if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            it.next();
        }
    }
}

fn expect_ident(it: &mut TokenIter, what: &str) -> String {
    match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected {what}, got {other:?}"),
    }
}

fn parse_input(input: TokenStream) -> Input {
    let mut it = input.into_iter().peekable();
    take_attrs(&mut it);
    take_vis(&mut it);
    let kw = expect_ident(&mut it, "`struct` or `enum`");
    let name = expect_ident(&mut it, "type name");
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic types ({name})");
    }
    let shape = match kw.as_str() {
        "struct" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => panic!("serde shim derive: unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(&name, g.stream()))
            }
            other => panic!("serde shim derive: expected enum body for {name}, got {other:?}"),
        },
        other => panic!("serde shim derive supports struct/enum only, got `{other}` ({name})"),
    };
    Input { name, shape }
}

fn parse_named_fields(body: TokenStream) -> Vec<NamedField> {
    let mut it = body.into_iter().peekable();
    let mut fields = Vec::new();
    while it.peek().is_some() {
        let skip = take_attrs(&mut it);
        take_vis(&mut it);
        let name = expect_ident(&mut it, "field name");
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:` after field {name}, got {other:?}"),
        }
        skip_type(&mut it);
        fields.push(NamedField { name, skip });
    }
    fields
}

/// Consume type tokens up to (and including) the field-separating comma.
/// Groups (`(..)`, `[..]`, `{..}`) are single atomic tokens; only
/// `<...>` nesting needs explicit depth tracking.
fn skip_type(it: &mut TokenIter) {
    let mut angle = 0i32;
    for t in it.by_ref() {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
    }
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut n = 0usize;
    let mut seen_tokens = false;
    let mut angle = 0i32;
    for t in body {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    n += 1;
                    seen_tokens = false;
                    continue;
                }
                _ => {}
            }
        }
        seen_tokens = true;
    }
    if seen_tokens {
        n += 1;
    }
    n
}

fn parse_variants(enum_name: &str, body: TokenStream) -> Vec<(String, usize)> {
    let mut it = body.into_iter().peekable();
    let mut variants = Vec::new();
    while it.peek().is_some() {
        take_attrs(&mut it);
        let name = expect_ident(&mut it, "variant name");
        let arity = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                it.next();
                n
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!("serde shim derive: struct variants unsupported ({enum_name}::{name})")
            }
            _ => 0,
        };
        match it.next() {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            other => panic!(
                "serde shim derive: unexpected token after {enum_name}::{name}: {other:?} \
                 (discriminants are unsupported)"
            ),
        }
        variants.push((name, arity));
    }
    variants
}

// ---- codegen ----

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "({:?}.to_string(), ::serde::Serialize::ser_value(&self.{}))",
                        f.name, f.name
                    )
                })
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::ser_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::ser_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", entries.join(", "))
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, arity)| match arity {
                    0 => format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string()),"),
                    1 => format!(
                        "{name}::{v}(f0) => ::serde::Value::Map(vec![({v:?}.to_string(), \
                         ::serde::Serialize::ser_value(f0))]),"
                    ),
                    n => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let sers: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::ser_value(f{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Map(vec![({v:?}.to_string(), \
                             ::serde::Value::Seq(vec![{}]))]),",
                            binds.join(", "),
                            sers.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn ser_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{}: ::std::default::Default::default()", f.name)
                    } else {
                        format!("{}: ::serde::field(m, {:?})?", f.name, f.name)
                    }
                })
                .collect();
            format!(
                "let m = ::serde::as_map(v, {name:?})?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::de_value(v)?))")
        }
        Shape::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::de_value(&s[{i}])?"))
                .collect();
            format!(
                "let s = ::serde::as_seq_n(v, {n}, {name:?})?;\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::Unit => format!(
            "match v {{\n\
             ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
             other => ::std::result::Result::Err(::serde::Error::custom(\
             format!(\"{name}: expected null, got {{other:?}}\"))),\n\
             }}"
        ),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, a)| *a == 0)
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter(|(_, a)| *a > 0)
                .map(|(v, arity)| {
                    if *arity == 1 {
                        format!(
                            "{v:?} => ::std::result::Result::Ok({name}::{v}(\
                             ::serde::Deserialize::de_value(val)?)),"
                        )
                    } else {
                        let inits: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::de_value(&s[{i}])?"))
                            .collect();
                        format!(
                            "{v:?} => {{\n\
                             let s = ::serde::as_seq_n(val, {arity}, \"{name}::{v}\")?;\n\
                             ::std::result::Result::Ok({name}::{v}({}))\n\
                             }},",
                            inits.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {}\n\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown unit variant {{other:?}} for {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                 let (k, val) = &m[0];\n\
                 let _ = val;\n\
                 match k.as_str() {{\n\
                 {}\n\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown variant {{other:?}} for {name}\"))),\n\
                 }}\n\
                 }},\n\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"{name}: expected variant string or single-key map, got {{other:?}}\"))),\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn de_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}
