//! Small descriptive-statistics helpers used by the evaluation harness.

use serde::{Deserialize, Serialize};

/// A one-pass summary of a sample: count, mean, variance (Welford), min,
/// max and sum.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Summarize a slice in one call.
    pub fn of(values: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Add one observation (Welford update — numerically stable).
    pub fn push(&mut self, v: f64) {
        assert!(v.is_finite(), "Summary only accepts finite values, got {v}");
        self.count += 1;
        self.sum += v;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Sample mean; 0 for the empty summary.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance; 0 for fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merge another summary into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.mean += delta * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Percentile of a sample by linear interpolation between closest ranks.
/// `q` is in `[0, 1]`. Returns `None` for an empty slice.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    // total_cmp: a stray NaN must not panic a reporting helper — under
    // the total order it sorts to the top tail deterministically.
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert_eq!(s.sum(), 10.0);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.variance() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(4.0));
    }

    #[test]
    fn empty_is_safe() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let all = [3.0, 1.0, 4.0, 1.5, 9.2, 2.6, 5.3];
        let whole = Summary::of(&all);
        let mut left = Summary::of(&all[..3]);
        let right = Summary::of(&all[3..]);
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
        assert!((left.variance() - whole.variance()).abs() < 1e-12);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut s = Summary::of(&[1.0, 2.0]);
        s.merge(&Summary::new());
        assert_eq!(s.count(), 2);
        let mut e = Summary::new();
        e.merge(&Summary::of(&[5.0]));
        assert_eq!(e.count(), 1);
        assert_eq!(e.mean(), 5.0);
    }

    #[test]
    fn percentiles() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 1.0), Some(5.0));
        assert_eq!(percentile(&v, 0.5), Some(3.0));
        assert_eq!(percentile(&v, 0.25), Some(2.0));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    #[should_panic]
    fn rejects_nan() {
        let mut s = Summary::new();
        s.push(f64::NAN);
    }
}
