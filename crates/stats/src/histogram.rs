//! Fixed-width histogram, used to reproduce the profit-distribution panels
//! (Figures 3(e) and 4(e)) of the paper.

use serde::{Deserialize, Serialize};

/// A histogram with `bins` equal-width buckets over `[lo, hi)`; values at
/// exactly `hi` land in the last bucket, values outside the range are
/// counted separately as underflow/overflow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Create a histogram over `[lo, hi)` with `bins ≥ 1` buckets.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins >= 1, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Build a histogram spanning the observed range of `values`.
    pub fn of(values: &[f64], bins: usize) -> Self {
        assert!(!values.is_empty(), "cannot infer range from empty data");
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let hi = if hi > lo { hi } else { lo + 1.0 };
        let mut h = Self::new(lo, hi, bins);
        for &v in values {
            h.record(v);
        }
        h
    }

    /// Record one value.
    pub fn record(&mut self, v: f64) {
        assert!(v.is_finite(), "histogram only accepts finite values");
        if v < self.lo {
            self.underflow += 1;
        } else if v > self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = (((v - self.lo) / width) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Number of buckets.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Count in bucket `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// All bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// `(low, high)` edges of bucket `i`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "bin index out of range");
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + i as f64 * width, self.lo + (i + 1) as f64 * width)
    }

    /// Midpoint of bucket `i`.
    pub fn bin_mid(&self, i: usize) -> f64 {
        let (lo, hi) = self.bin_range(i);
        0.5 * (lo + hi)
    }

    /// Total recorded values, including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Values below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Values above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Render as `(midpoint, count)` rows, the format the figure binaries
    /// print.
    pub fn rows(&self) -> Vec<(f64, u64)> {
        (0..self.bins())
            .map(|i| (self.bin_mid(i), self.counts[i]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(0.0);
        h.record(1.9);
        h.record(2.0);
        h.record(9.99);
        h.record(10.0); // boundary: last bin
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(4), 2);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(-0.5);
        h.record(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn of_spans_data() {
        let h = Histogram::of(&[1.0, 2.0, 3.0, 4.0], 4);
        assert_eq!(h.total(), 4);
        assert_eq!(h.underflow() + h.overflow(), 0);
        let (lo, _) = h.bin_range(0);
        assert_eq!(lo, 1.0);
    }

    #[test]
    fn of_constant_data() {
        let h = Histogram::of(&[5.0, 5.0, 5.0], 3);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn rows_align_with_bins() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.record(0.5);
        h.record(3.5);
        let rows = h.rows();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0], (0.5, 1));
        assert_eq!(rows[3], (3.5, 1));
    }
}
