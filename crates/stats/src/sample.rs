//! Samplers used by the synthetic data generators.
//!
//! The paper's evaluation (§5.2) needs a Zipf distribution (Dataset I
//! target frequencies), a normal distribution (Dataset II), and the IBM
//! Quest generator needs Poisson (transaction and pattern sizes) and
//! exponential (pattern weights) draws. Only the `rand` crate is allowed
//! offline, so the distributions themselves are implemented here, each
//! with an explicit, seedable `Rng` argument.

use rand::Rng;

/// Zipf distribution over ranks `1..=n` with exponent `s`:
/// `P(rank = k) ∝ 1 / k^s`.
///
/// Sampling is inversion over a precomputed cumulative table (O(log n)
/// per draw), which is exact and fast for the rank counts used here.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build a Zipf sampler over `1..=n` with exponent `s > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not finite and positive.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf requires at least one rank");
        assert!(s.is_finite() && s > 0.0, "Zipf exponent must be > 0");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Self { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when there is a single rank.
    pub fn is_empty(&self) -> bool {
        false // construction guarantees n > 0
    }

    /// Probability mass of rank `k` (1-based).
    pub fn pmf(&self, k: usize) -> f64 {
        assert!(k >= 1 && k <= self.cumulative.len(), "rank out of range");
        let hi = self.cumulative[k - 1];
        let lo = if k >= 2 { self.cumulative[k - 2] } else { 0.0 };
        hi - lo
    }

    /// Draw a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cumulative.binary_search_by(|c| c.total_cmp(&u)) {
            // Err(i): u falls strictly before cumulative[i] ⇒ rank i+1.
            // Ok(i): u lands exactly on the boundary; rank i+1 as well.
            Ok(i) | Err(i) => (i + 1).min(self.cumulative.len()),
        }
    }
}

/// Normal distribution sampled with the Marsaglia polar method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// A normal with the given mean and standard deviation (`sd > 0`).
    pub fn new(mean: f64, sd: f64) -> Self {
        assert!(sd.is_finite() && sd > 0.0, "standard deviation must be > 0");
        assert!(mean.is_finite(), "mean must be finite");
        Self { mean, sd }
    }

    /// The mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation.
    pub fn sd(&self) -> f64 {
        self.sd
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.sd;
        (-0.5 * z * z).exp() / (self.sd * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Draw one variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Marsaglia polar: rejection inside the unit disc. One accepted
        // pair yields two variates; the second is discarded for the sake
        // of a stateless sampler (determinism per call order matters more
        // here than halving the draw count).
        loop {
            let u: f64 = rng.gen_range(-1.0..1.0);
            let v: f64 = rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let mul = (-2.0 * s.ln() / s).sqrt();
                return self.mean + self.sd * (u * mul);
            }
        }
    }
}

/// Poisson distribution, sampled with Knuth's product method — exact and
/// fast for the small means (≈ 2–10) the Quest generator uses. For large
/// means (> 60) it falls back to a normal approximation, rounded and
/// clamped at zero, which keeps the generator usable for stress tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    mean: f64,
}

impl Poisson {
    /// A Poisson with mean `λ > 0`.
    pub fn new(mean: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "Poisson mean must be > 0");
        Self { mean }
    }

    /// The mean `λ`.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Draw one variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.mean > 60.0 {
            let n = Normal::new(self.mean, self.mean.sqrt()).sample(rng);
            return n.round().max(0.0) as u64;
        }
        let limit = (-self.mean).exp();
        let mut k = 0u64;
        let mut product: f64 = rng.gen();
        while product > limit {
            k += 1;
            product *= rng.gen::<f64>();
        }
        k
    }
}

/// Exponential distribution with the given rate, sampled by inversion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// An exponential with rate `λ > 0` (mean `1/λ`).
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be > 0");
        Self { rate }
    }

    /// An exponential with the given mean.
    pub fn with_mean(mean: f64) -> Self {
        Self::new(1.0 / mean)
    }

    /// Draw one variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // gen() yields [0,1); use 1−u to avoid ln(0).
        let u: f64 = rng.gen();
        -(1.0 - u).ln() / self.rate
    }
}

/// Binomial distribution `Binomial(n, p)`, sampled as a sum of Bernoulli
/// draws — exact and fast for the tiny `n` (price-grid size) used by the
/// data generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u32,
    p: f64,
}

impl Binomial {
    /// A binomial with `n` trials and success probability `p ∈ [0, 1]`.
    pub fn new(n: u32, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        Self { n, p }
    }

    /// Number of trials.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Draw one variate in `0..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        (0..self.n).filter(|_| rng.gen_bool(self.p)).count() as u32
    }
}

/// Discrete distribution over `0..weights.len()` proportional to the given
/// non-negative weights; O(log n) sampling by inversion.
#[derive(Debug, Clone)]
pub struct Discrete {
    cumulative: Vec<f64>,
}

impl Discrete {
    /// Build from raw weights. At least one weight must be positive; all
    /// must be finite and non-negative.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "Discrete requires at least one weight");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "weights must be finite, ≥ 0");
            total += w;
            cumulative.push(total);
        }
        assert!(total > 0.0, "at least one weight must be positive");
        for c in &mut cumulative {
            *c /= total;
        }
        Self { cumulative }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Always false: construction requires a non-empty weight vector.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draw a category index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cumulative.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(100, 1.0);
        let total: f64 = (1..=100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let z = Zipf::new(10, 1.0);
        for k in 2..=10 {
            assert!(z.pmf(1) > z.pmf(k));
        }
    }

    #[test]
    fn zipf_two_ranks_ratio() {
        // With s chosen so that P(1)/P(2) = 5, the paper's Dataset I 5:1
        // split is a two-rank Zipf: s = log2(5).
        let s = 5.0f64.log2();
        let z = Zipf::new(2, s);
        let ratio = z.pmf(1) / z.pmf(2);
        assert!((ratio - 5.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_samples_in_range_and_skewed() {
        let z = Zipf::new(50, 1.2);
        let mut rng = rng();
        let mut counts = vec![0u32; 51];
        for _ in 0..20_000 {
            let k = z.sample(&mut rng);
            assert!((1..=50).contains(&k));
            counts[k] += 1;
        }
        assert!(counts[1] > counts[10]);
        assert!(counts[1] > counts[50]);
    }

    #[test]
    fn normal_moments() {
        let n = Normal::new(3.0, 2.0);
        let mut rng = rng();
        let draws: Vec<f64> = (0..50_000).map(|_| n.sample(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        let var =
            draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (draws.len() - 1) as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn normal_pdf_peak_at_mean() {
        let n = Normal::new(0.0, 1.0);
        assert!(n.pdf(0.0) > n.pdf(0.5));
        assert!((n.pdf(0.0) - 0.398_942_280_4).abs() < 1e-9);
        assert!((n.pdf(1.0) - n.pdf(-1.0)).abs() < 1e-12);
    }

    #[test]
    fn poisson_mean_matches() {
        let p = Poisson::new(10.0);
        let mut rng = rng();
        let total: u64 = (0..50_000).map(|_| p.sample(&mut rng)).sum();
        let mean = total as f64 / 50_000.0;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_large_mean_fallback() {
        let p = Poisson::new(200.0);
        let mut rng = rng();
        let total: u64 = (0..20_000).map(|_| p.sample(&mut rng)).sum();
        let mean = total as f64 / 20_000.0;
        assert!((mean - 200.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn exponential_mean_matches() {
        let e = Exponential::with_mean(4.0);
        let mut rng = rng();
        let total: f64 = (0..50_000).map(|_| e.sample(&mut rng)).sum();
        let mean = total / 50_000.0;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn discrete_respects_weights() {
        let d = Discrete::new(&[1.0, 0.0, 3.0]);
        let mut rng = rng();
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[d.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.25, "ratio {ratio}");
    }

    #[test]
    fn binomial_mean_and_range() {
        let b = Binomial::new(3, 0.4);
        let mut rng = rng();
        let mut total = 0u64;
        for _ in 0..30_000 {
            let v = b.sample(&mut rng);
            assert!(v <= 3);
            total += v as u64;
        }
        let mean = total as f64 / 30_000.0;
        assert!((mean - 1.2).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn binomial_uniform_mixture() {
        // With θ ~ U[0,1], Binomial(n, θ) is uniform over 0..=n — the
        // property the price-sensitivity generator relies on.
        let mut rng = rng();
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            let theta: f64 = rng.gen();
            counts[Binomial::new(3, theta).sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / 40_000.0;
            assert!((frac - 0.25).abs() < 0.02, "{counts:?}");
        }
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let z = Zipf::new(20, 1.0);
        let a: Vec<usize> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..100).map(|_| z.sample(&mut r)).collect()
        };
        let b: Vec<usize> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..100).map(|_| z.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn discrete_rejects_all_zero() {
        let _ = Discrete::new(&[0.0, 0.0]);
    }
}
