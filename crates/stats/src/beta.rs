//! Regularized incomplete beta function `I_x(a, b)`.
//!
//! Implemented with the standard continued-fraction expansion (Lentz's
//! method, as in *Numerical Recipes*), switching to the symmetry relation
//! `I_x(a,b) = 1 − I_{1−x}(b,a)` when the fraction would converge slowly.
//! The binomial CDF — and therefore the paper's pessimistic estimator —
//! is a thin wrapper over this function.

use crate::gamma::ln_beta;

const MAX_ITER: usize = 300;
const EPS: f64 = 1e-14;
const TINY: f64 = 1e-300;

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0` and
/// `x ∈ [0, 1]`.
///
/// # Panics
///
/// Panics on parameters outside the domain.
pub fn inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "inc_beta requires a, b > 0 ({a}, {b})");
    assert!(
        (0.0..=1.0).contains(&x),
        "inc_beta requires x in [0,1] ({x})"
    );
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    // ln of the prefactor x^a (1−x)^b / (a B(a,b))
    let ln_front = a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b);
    // Use the continued fraction directly when x is below the mean-ish
    // threshold; otherwise use symmetry for fast convergence.
    if x <= (a + 1.0) / (a + b + 2.0) {
        (ln_front.exp() / a) * beta_cf(a, b, x)
    } else {
        1.0 - inc_beta(b, a, 1.0 - x)
    }
}

/// Continued fraction for the incomplete beta (Lentz's algorithm).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0f64;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            return h;
        }
    }
    // The fraction converges in a few dozen iterations for all inputs the
    // workspace produces; reaching MAX_ITER indicates pathological
    // parameters, where the partial result is still accurate to ~1e-10.
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn boundary_values() {
        assert_eq!(inc_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(inc_beta(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn uniform_case() {
        // I_x(1, 1) = x
        for &x in &[0.1, 0.25, 0.5, 0.75, 0.9] {
            close(inc_beta(1.0, 1.0, x), x, 1e-12);
        }
    }

    #[test]
    fn closed_forms() {
        // I_x(1, b) = 1 − (1−x)^b
        for &(b, x) in &[(3.0, 0.2), (5.0, 0.7), (10.0, 0.05)] {
            close(inc_beta(1.0, b, x), 1.0 - (1.0 - x).powf(b), 1e-12);
        }
        // I_x(a, 1) = x^a
        for &(a, x) in &[(2.0, 0.3), (4.0, 0.9)] {
            close(inc_beta(a, 1.0, x), x.powf(a), 1e-12);
        }
    }

    #[test]
    fn symmetry() {
        for &(a, b, x) in &[(2.0, 5.0, 0.3), (0.5, 0.5, 0.8), (7.0, 3.0, 0.55)] {
            close(inc_beta(a, b, x), 1.0 - inc_beta(b, a, 1.0 - x), 1e-12);
        }
    }

    #[test]
    fn monotone_in_x() {
        let mut prev = 0.0;
        for i in 1..100 {
            let x = i as f64 / 100.0;
            let v = inc_beta(3.2, 4.7, x);
            assert!(v >= prev, "not monotone at x={x}");
            prev = v;
        }
    }

    #[test]
    fn known_half_half() {
        // I_{1/2}(1/2, 1/2) = 1/2 (arcsine distribution median).
        close(inc_beta(0.5, 0.5, 0.5), 0.5, 1e-10);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_x() {
        let _ = inc_beta(1.0, 1.0, 1.5);
    }
}
