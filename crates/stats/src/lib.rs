//! Numerics substrate for the profit-mining workspace.
//!
//! This crate provides everything statistical that the EDBT 2002 paper
//! *Profit Mining: From Patterns to Actions* depends on:
//!
//! * the **pessimistic binomial upper limit** `U_CF(N, E)` of Clopper &
//!   Pearson (1934) as used by C4.5 \[Q93\] to estimate projected error —
//!   here projected *non-hit* rates ([`binomial::pessimistic_upper`]);
//! * the special functions it needs (log-gamma, regularized incomplete
//!   beta) implemented from scratch ([`gamma`], [`beta`]);
//! * the **samplers** used by the synthetic data generators: Zipf (the
//!   Dataset I target distribution), normal (Dataset II), Poisson and
//!   exponential (the IBM Quest generator), and a generic discrete
//!   cumulative-weight sampler ([`sample`]);
//! * small **descriptive statistics** and **histogram** helpers used by the
//!   evaluation harness ([`descriptive`], [`histogram`]).
//!
//! Everything is deterministic given a seeded [`rand::Rng`]; no global
//! RNG state is used anywhere in the workspace.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod beta;
pub mod binomial;
pub mod descriptive;
pub mod gamma;
pub mod histogram;
pub mod sample;

pub use binomial::{binomial_cdf, pessimistic_upper, PessimisticEstimator};
pub use descriptive::Summary;
pub use histogram::Histogram;
pub use sample::{Binomial, Discrete, Exponential, Normal, Poisson, Zipf};
