//! Log-gamma via the Lanczos approximation.
//!
//! `ln Γ(x)` is the only special function the incomplete beta needs. The
//! Lanczos coefficients below (g = 7, n = 9) give roughly 15 significant
//! digits over the positive reals, which is far more than the pessimistic
//! estimator requires.

/// Lanczos coefficients for g = 7, n = 9, quoted at full published
/// precision (the trailing digits round away in the f64 literal).
#[allow(clippy::excessive_precision)]
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_93,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_13,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_571_6e-6,
    1.505_632_735_149_311_6e-7,
];

const LANCZOS_G: f64 = 7.0;
const HALF_LN_2PI: f64 = 0.918_938_533_204_672_7; // ln(2π)/2

/// Natural log of the gamma function for `x > 0`.
///
/// # Panics
///
/// Panics if `x` is not finite and positive — callers in this workspace
/// always pass counts shifted by small constants, so a non-positive
/// argument is a programming error, not a data condition.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(
        x.is_finite() && x > 0.0,
        "ln_gamma requires finite x > 0, got {x}"
    );
    // For x < 0.5 use the reflection formula to stay in the accurate range.
    if x < 0.5 {
        // ln Γ(x) = ln(π / sin(πx)) − ln Γ(1 − x)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    HALF_LN_2PI + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Natural log of the beta function `B(a, b) = Γ(a)Γ(b)/Γ(a+b)`.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn integer_factorials() {
        // Γ(n) = (n−1)!
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), (24.0f64).ln(), 1e-12);
        close(ln_gamma(11.0), (3_628_800.0f64).ln(), 1e-10);
    }

    #[test]
    fn half_integer() {
        // Γ(1/2) = √π
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Γ(3/2) = √π / 2
        close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12,
        );
    }

    #[test]
    fn recurrence_holds() {
        // ln Γ(x+1) = ln x + ln Γ(x)
        for &x in &[0.1, 0.7, 1.3, 2.9, 10.4, 123.456] {
            close(ln_gamma(x + 1.0), x.ln() + ln_gamma(x), 1e-10);
        }
    }

    #[test]
    fn ln_beta_symmetry() {
        for &(a, b) in &[(1.0, 2.0), (3.5, 0.5), (10.0, 20.0)] {
            close(ln_beta(a, b), ln_beta(b, a), 1e-12);
        }
    }

    #[test]
    fn ln_beta_known_value() {
        // B(1, b) = 1/b
        close(ln_beta(1.0, 4.0), (0.25f64).ln(), 1e-12);
        // B(2, 3) = 1/12
        close(ln_beta(2.0, 3.0), (1.0f64 / 12.0).ln(), 1e-12);
    }

    #[test]
    #[should_panic]
    fn rejects_non_positive() {
        let _ = ln_gamma(0.0);
    }
}
