//! The pessimistic binomial upper limit `U_CF(N, E)` of Clopper & Pearson
//! \[CP34\], as used by C4.5 \[Q93\] and by the paper's projected-profit
//! estimator (§4.2).
//!
//! Given that `E` of `N` covered transactions were **not** hit by a rule's
//! recommendation, the sample is treated as a binomial draw and `U_CF` is
//! the upper confidence limit on the true non-hit probability: the largest
//! `p` such that observing `≤ E` failures still has probability `CF`.
//! Formally `U_CF(N, E)` solves
//!
//! ```text
//!     P(X ≤ E | N, p) = CF        (X ~ Binomial(N, p))
//! ```
//!
//! The projected number of hits of a rule covering `N` transactions is then
//! `X = N · (1 − U_CF(N, E))`.

use crate::beta::inc_beta;
use serde::{Deserialize, Serialize};

/// Default confidence level used by C4.5 (25%).
pub const DEFAULT_CF: f64 = 0.25;

/// Cumulative distribution `P(X ≤ k)` of `Binomial(n, p)`.
///
/// Computed through the regularized incomplete beta:
/// `P(X ≤ k) = I_{1−p}(n − k, k + 1)` for `k < n`, and `1` for `k ≥ n`.
pub fn binomial_cdf(k: u64, n: u64, p: f64) -> f64 {
    assert!(n > 0, "binomial_cdf requires n > 0");
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    if k >= n {
        return 1.0;
    }
    if p == 0.0 {
        return 1.0;
    }
    if p == 1.0 {
        return 0.0;
    }
    inc_beta((n - k) as f64, (k + 1) as f64, 1.0 - p)
}

/// The Clopper–Pearson / C4.5 pessimistic upper limit `U_CF(N, E)`.
///
/// * `n` — number of covered transactions (must be > 0);
/// * `e` — number of them that were not hit (`e ≤ n`);
/// * `cf` — confidence level in `(0, 1)`; C4.5's default is `0.25`.
///
/// Special cases: `e == n` yields `1.0`; `e == 0` has the closed form
/// `1 − CF^{1/N}` (the equation `(1 − p)^N = CF`).
///
/// The general case is solved by bisection on the strictly decreasing
/// function `p ↦ P(X ≤ E | N, p)` to absolute tolerance `1e-12`.
pub fn pessimistic_upper(n: u64, e: u64, cf: f64) -> f64 {
    assert!(n > 0, "pessimistic_upper requires n > 0");
    assert!(e <= n, "e ({e}) must be ≤ n ({n})");
    assert!(
        cf > 0.0 && cf < 1.0,
        "confidence level must be in (0,1), got {cf}"
    );
    if e == n {
        return 1.0;
    }
    if e == 0 {
        return 1.0 - cf.powf(1.0 / n as f64);
    }
    // P(X ≤ e | p) is continuous and strictly decreasing in p, from 1 at
    // p = 0 to 0 at p = 1, so a unique root exists in (e/n, 1).
    let mut lo = e as f64 / n as f64; // cdf ≥ 1/2 ≥ CF here for CF ≤ 0.5…
    if binomial_cdf(e, n, lo) < cf {
        lo = 0.0; // …but stay correct for any CF.
    }
    let mut hi = 1.0f64;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if binomial_cdf(e, n, mid) > cf {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-12 {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// A reusable pessimistic estimator with a fixed confidence level and a
/// small memo table for the `(n, e)` pairs that repeat heavily during
/// covering-tree pruning.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PessimisticEstimator {
    cf: f64,
    #[serde(skip)]
    cache: std::cell::RefCell<std::collections::HashMap<(u64, u64), f64>>,
}

impl PessimisticEstimator {
    /// Create an estimator with confidence level `cf` (see
    /// [`pessimistic_upper`] for the domain).
    pub fn new(cf: f64) -> Self {
        assert!(cf > 0.0 && cf < 1.0, "confidence level must be in (0,1)");
        Self {
            cf,
            cache: std::cell::RefCell::new(std::collections::HashMap::new()),
        }
    }

    /// The confidence level this estimator was built with.
    pub fn cf(&self) -> f64 {
        self.cf
    }

    /// `U_CF(n, e)` — memoized.
    pub fn upper(&self, n: u64, e: u64) -> f64 {
        if let Some(&v) = self.cache.borrow().get(&(n, e)) {
            return v;
        }
        let v = pessimistic_upper(n, e, self.cf);
        self.cache.borrow_mut().insert((n, e), v);
        v
    }

    /// Projected number of hits in a population of `n` covered
    /// transactions, of which `e` were observed non-hits:
    /// `X = n · (1 − U_CF(n, e))` (§4.2 of the paper).
    pub fn projected_hits(&self, n: u64, e: u64) -> f64 {
        if n == 0 {
            return 0.0;
        }
        n as f64 * (1.0 - self.upper(n, e))
    }
}

impl Default for PessimisticEstimator {
    fn default() -> Self {
        Self::new(DEFAULT_CF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    /// Direct summation of the binomial pmf, for cross-checking.
    fn cdf_direct(k: u64, n: u64, p: f64) -> f64 {
        let mut total = 0.0;
        for i in 0..=k.min(n) {
            let ln_choose = crate::gamma::ln_gamma(n as f64 + 1.0)
                - crate::gamma::ln_gamma(i as f64 + 1.0)
                - crate::gamma::ln_gamma((n - i) as f64 + 1.0);
            total += (ln_choose + i as f64 * p.ln() + (n - i) as f64 * (1.0 - p).ln()).exp();
        }
        total
    }

    #[test]
    fn cdf_matches_direct_sum() {
        for &(k, n, p) in &[
            (0u64, 10u64, 0.3f64),
            (3, 10, 0.3),
            (5, 10, 0.5),
            (9, 10, 0.9),
            (2, 50, 0.05),
            (12, 100, 0.1),
        ] {
            close(binomial_cdf(k, n, p), cdf_direct(k, n, p), 1e-10);
        }
    }

    #[test]
    fn cdf_edges() {
        assert_eq!(binomial_cdf(10, 10, 0.5), 1.0);
        assert_eq!(binomial_cdf(3, 10, 0.0), 1.0);
        assert_eq!(binomial_cdf(3, 10, 1.0), 0.0);
    }

    #[test]
    fn zero_error_closed_form() {
        // C4.5's best-known special case: U_CF(N, 0) = 1 − CF^(1/N).
        for &n in &[1u64, 2, 6, 9, 16, 100] {
            let expect = 1.0 - 0.25f64.powf(1.0 / n as f64);
            close(pessimistic_upper(n, 0, 0.25), expect, 1e-12);
        }
        // Quinlan's book quotes U_25%(1, 0) = 0.75 and U_25%(6, 0) ≈ 0.206.
        close(pessimistic_upper(1, 0, 0.25), 0.75, 1e-12);
        close(pessimistic_upper(6, 0, 0.25), 0.2063, 5e-4);
        close(pessimistic_upper(9, 0, 0.25), 0.1429, 5e-4);
    }

    #[test]
    fn upper_limit_satisfies_defining_equation() {
        for &(n, e) in &[(10u64, 1u64), (20, 3), (50, 10), (100, 40), (7, 6)] {
            let u = pessimistic_upper(n, e, 0.25);
            close(binomial_cdf(e, n, u), 0.25, 1e-8);
        }
    }

    #[test]
    fn all_errors_is_one() {
        assert_eq!(pessimistic_upper(5, 5, 0.25), 1.0);
    }

    #[test]
    fn monotone_in_e() {
        // More observed failures ⇒ larger pessimistic failure bound.
        let mut prev = 0.0;
        for e in 0..=20 {
            let u = pessimistic_upper(20, e, 0.25);
            assert!(u > prev, "U not increasing at e={e}");
            prev = u;
        }
    }

    #[test]
    fn tightens_with_n() {
        // With the same observed rate, more evidence ⇒ tighter bound.
        let loose = pessimistic_upper(10, 2, 0.25);
        let tight = pessimistic_upper(100, 20, 0.25);
        assert!(tight < loose);
    }

    #[test]
    fn higher_cf_means_lower_upper_bound() {
        // CF is the tail mass we allow; larger CF is *less* pessimistic.
        let u10 = pessimistic_upper(30, 5, 0.10);
        let u25 = pessimistic_upper(30, 5, 0.25);
        let u50 = pessimistic_upper(30, 5, 0.50);
        assert!(u10 > u25 && u25 > u50);
    }

    #[test]
    fn estimator_projects_hits() {
        let est = PessimisticEstimator::default();
        // All hits observed, large N ⇒ projection stays close to N.
        let hits = est.projected_hits(1000, 0);
        assert!(hits > 995.0 && hits < 1000.0);
        // All misses ⇒ zero projected hits.
        assert_eq!(est.projected_hits(10, 10), 0.0);
        // Empty coverage ⇒ zero.
        assert_eq!(est.projected_hits(0, 0), 0.0);
    }

    #[test]
    fn estimator_cache_consistent() {
        let est = PessimisticEstimator::new(0.25);
        let a = est.upper(40, 7);
        let b = est.upper(40, 7);
        assert_eq!(a, b);
        close(a, pessimistic_upper(40, 7, 0.25), 0.0);
    }

    #[test]
    fn pessimism_exceeds_observed_rate() {
        // The upper bound is above the raw observed rate (that is the point).
        for &(n, e) in &[(10u64, 2u64), (100, 5), (30, 0)] {
            assert!(pessimistic_upper(n, e, 0.25) > e as f64 / n as f64);
        }
    }
}
