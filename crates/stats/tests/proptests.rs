//! Property-based tests for the numerics substrate.

use pm_stats::{binomial_cdf, pessimistic_upper, Binomial, Discrete, Normal, Poisson, Zipf};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// The incomplete-beta-based CDF equals direct pmf summation.
    #[test]
    fn cdf_equals_direct_sum(n in 1u64..60, k in 0u64..60, p in 0.01f64..0.99) {
        let k = k.min(n);
        let direct: f64 = (0..=k)
            .map(|i| {
                let ln_choose = ln_gamma(n as f64 + 1.0)
                    - ln_gamma(i as f64 + 1.0)
                    - ln_gamma((n - i) as f64 + 1.0);
                (ln_choose + i as f64 * p.ln() + (n - i) as f64 * (1.0 - p).ln()).exp()
            })
            .sum();
        prop_assert!((binomial_cdf(k, n, p) - direct).abs() < 1e-9);
    }

    /// The pessimistic upper bound solves its defining equation and
    /// exceeds the observed rate.
    #[test]
    fn upper_bound_properties(n in 1u64..200, e_frac in 0.0f64..1.0, cf in 0.05f64..0.95) {
        let e = ((n as f64) * e_frac) as u64;
        let u = pessimistic_upper(n, e, cf);
        // The bound exceeds the observed rate only when the allowed tail
        // mass is at most 1/2 (CF > 0.5 is *optimistic*).
        if cf <= 0.5 {
            prop_assert!(u >= e as f64 / n as f64 - 1e-12);
        }
        prop_assert!(u <= 1.0);
        if e < n {
            prop_assert!((binomial_cdf(e, n, u) - cf).abs() < 1e-6);
        }
    }

    /// More observed failures never lower the bound; more data at the
    /// same rate never raises it above the smaller-sample bound.
    #[test]
    fn upper_bound_monotonicity(n in 2u64..100, e in 0u64..100) {
        let e = e.min(n - 1);
        let u1 = pessimistic_upper(n, e, 0.25);
        let u2 = pessimistic_upper(n, e + 1, 0.25);
        prop_assert!(u2 >= u1 - 1e-12);
        let u_double = pessimistic_upper(2 * n, 2 * e, 0.25);
        prop_assert!(u_double <= u1 + 1e-9);
    }

    /// Samplers stay within their supports.
    #[test]
    fn sampler_supports(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let z = Zipf::new(17, 1.1);
        for _ in 0..50 {
            let v = z.sample(&mut rng);
            prop_assert!((1..=17).contains(&v));
        }
        let b = Binomial::new(5, 0.3);
        for _ in 0..50 {
            prop_assert!(b.sample(&mut rng) <= 5);
        }
        let p = Poisson::new(3.0);
        for _ in 0..50 {
            let _ = p.sample(&mut rng); // no panic, any u64
        }
        let n = Normal::new(1.0, 2.0);
        for _ in 0..50 {
            prop_assert!(n.sample(&mut rng).is_finite());
        }
    }

    /// Discrete sampling never returns a zero-weight category.
    #[test]
    fn discrete_respects_zero_weights(seed in 0u64..500, zero_at in 0usize..4) {
        let mut weights = [1.0f64; 4];
        weights[zero_at] = 0.0;
        let d = Discrete::new(&weights);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert_ne!(d.sample(&mut rng), zero_at);
        }
    }
}

fn ln_gamma(x: f64) -> f64 {
    pm_stats::gamma::ln_gamma(x)
}
